// Madeleine-style pack/unpack buffers (paper ref [2]).
//
// PM2's migration and RPC layers describe outgoing data as a sequence of
// *pack* operations; the buffer gathers them into a scatter-gather
// BufferChain — small fields are staged (copied once) into chunk storage,
// bulk regions like slot payloads are *borrowed* as {ptr,len} segments.
// The chain travels as-is down to the fabric, which gathers it straight to
// the wire (writev); nothing is flattened unless a legacy consumer asks.
// This is what kept Madeleine's migration path cheap: headers are staged,
// slot contents go from their iso-addresses to the network with no
// intermediate copy.
//
// Two packing modes, mirroring madeleine's send modes:
//  * kCopy   ("send_safer")  — bytes are copied immediately; the source may
//    change or vanish afterwards.
//  * kBorrow ("send_cheaper") — only the (pointer,len) is recorded; the
//    source must stay intact until the chain is consumed (sent through a
//    fabric, flattened, or sealed).  Used for slot images.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "common/serialize.hpp"

namespace pm2::mad {

enum class PackMode { kCopy, kBorrow };

/// Staged-chunk pool counters (process-wide, summed over the per-kernel-
/// thread caches).  The RPC hot path builds a PackBuffer per call; a
/// healthy pool serves those chunk allocations from recycled storage.
uint64_t chunk_pool_hits();
uint64_t chunk_pool_misses();

/// Ordered scatter-gather list of {ptr,len} byte segments.  Each segment is
/// either *owned* (bytes live in internal chunk storage, stable addresses)
/// or *borrowed* (points into caller memory).  Move-only; the segment view
/// is iovec-shaped so transports can gather without flattening.
class BufferChain {
 public:
  struct Segment {
    const uint8_t* data;
    size_t len;
  };

  BufferChain() = default;
  explicit BufferChain(size_t reserve_hint) : reserve_hint_(reserve_hint) {}
  ~BufferChain() { release_chunks(); }
  BufferChain(BufferChain&&) noexcept = default;
  BufferChain& operator=(BufferChain&&) noexcept = default;
  BufferChain(const BufferChain&) = delete;
  BufferChain& operator=(const BufferChain&) = delete;

  /// Copy `len` bytes into owned storage now.
  void append_copy(const void* data, size_t len);
  /// Record {data,len}; the memory must outlive the chain's consumption.
  void append_borrow(const void* data, size_t len);
  /// Splice another chain onto the end (chunks change hands; no copies).
  void append_chain(BufferChain&& other);

  size_t size() const { return total_; }
  bool empty() const { return total_ == 0; }
  const std::vector<Segment>& segments() const { return segments_; }

  /// Bytes that were memcpy'd into owned storage (append_copy / seal).
  size_t copied_bytes() const { return copied_; }
  /// Bytes still referenced in caller memory.
  size_t borrowed_bytes() const { return borrowed_; }

  /// Gather all segments into `dst` (must hold size() bytes).
  void gather(uint8_t* dst) const;
  /// Gather into a fresh flat vector; the chain is unchanged.
  std::vector<uint8_t> flatten() const;
  /// Destructive flatten.  A chain whose bytes already sit contiguously in
  /// one owned chunk is *moved* out with no copy; anything else gathers.
  /// Leaves the chain empty.
  std::vector<uint8_t> take_flat();
  /// Detach from caller memory: if any segment is borrowed, gather the
  /// whole chain into a single owned chunk (so a later take_flat() is a
  /// move).  Returns the number of bytes copied (0 if already owned).
  size_t seal();

  void clear();

 private:
  uint8_t* grow(size_t len);
  /// Hand still-pooled-sized chunks back to the calling kernel thread's
  /// chunk cache (free-function pool below) instead of freeing them.
  void release_chunks();
  bool single_owned_chunk() const {
    return chunks_.size() == 1 && borrowed_ == 0 &&
           chunks_[0].size() == total_;
  }

  static constexpr size_t kMinChunk = 1024;
  // Chunks are reserved once and only ever filled within capacity, so
  // pointers into them stay stable (segments reference them directly).
  std::vector<std::vector<uint8_t>> chunks_;
  std::vector<Segment> segments_;
  size_t total_ = 0;
  size_t copied_ = 0;
  size_t borrowed_ = 0;
  size_t reserve_hint_ = 0;
};

class PackBuffer {
 public:
  PackBuffer() = default;
  explicit PackBuffer(size_t reserve_hint) : chain_(reserve_hint) {}

  /// Fixed-size trivially copyable value (always copied).
  template <typename T>
  void pack(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    pack_bytes(&v, sizeof(T), PackMode::kCopy);
  }

  void pack_string(const std::string& s) {
    pack<uint32_t>(static_cast<uint32_t>(s.size()));
    pack_bytes(s.data(), s.size(), PackMode::kCopy);
  }

  /// Length-prefixed byte region.
  void pack_region(const void* data, size_t len,
                   PackMode mode = PackMode::kCopy) {
    pack<uint64_t>(len);
    pack_bytes(data, len, mode);
  }

  /// Raw bytes, no length prefix (caller controls framing).
  void pack_bytes(const void* data, size_t len, PackMode mode);

  /// Total payload size so far.
  size_t size() const { return chain_.size(); }

  /// Move the staged chain out (borrowed regions stay borrowed — zero
  /// copies).  The buffer is left empty, ready for reuse.
  BufferChain take_chain();

  /// Legacy: flatten into a single contiguous payload.  Borrowed regions
  /// are copied now; the buffer is left empty.
  std::vector<uint8_t> finalize();

 private:
  BufferChain chain_;
};

/// Mirror of PackBuffer over a received payload.
class UnpackBuffer {
 public:
  UnpackBuffer(const void* data, size_t len) : reader_(data, len) {}
  explicit UnpackBuffer(const std::vector<uint8_t>& v)
      : reader_(v.data(), v.size()) {}

  template <typename T>
  T unpack() {
    return reader_.get<T>();
  }

  std::string unpack_string() { return reader_.get_string(); }

  /// Length-prefixed region: copies into `out` (must hold the prefix len).
  size_t unpack_region(void* out, size_t capacity);

  /// Length-prefixed region: zero-copy view into the underlying payload.
  const uint8_t* unpack_region_view(size_t* len);

  void unpack_bytes(void* out, size_t len) { reader_.get_bytes(out, len); }

  /// Zero-copy view of the next `len` bytes (advances the cursor).  The
  /// pointer is valid as long as the underlying payload lives.
  const uint8_t* view_bytes(size_t len) { return reader_.view_bytes(len); }

  /// Advance past `len` bytes without copying them.
  void skip(size_t len) { reader_.view_bytes(len); }

  size_t remaining() const { return reader_.remaining(); }
  bool exhausted() const { return reader_.exhausted(); }

 private:
  pm2::ByteReader reader_;
};

}  // namespace pm2::mad
