// Portable context-switch fallback on POSIX ucontext.
//
// The save area is a ucontext_t living in the frame of pm2_ctx_switch — on
// the switched-out thread's own stack — so migration semantics match the
// assembly implementation: copying the stack copies the context, and the
// internal uc_mcontext.fpregs pointer (which points into the same
// ucontext_t) stays valid because the copy lands at the same iso-address.
#include <ucontext.h>

#include <cstdint>

#include "common/check.hpp"
#include "marcel/context.hpp"
#include "sys/sanitizer.hpp"
#include "sys/spinlock.hpp"

extern "C" void pm2_ctx_switch(void** save_sp, void* load_sp) {
  ucontext_t self;
  *save_sp = &self;
  PM2_CHECK(::swapcontext(&self, static_cast<ucontext_t*>(load_sp)) == 0);
}

namespace pm2::marcel {

namespace {
// makecontext() only passes ints portably; split the two pointers.
void trampoline(uint32_t entry_lo, uint32_t entry_hi, uint32_t arg_lo,
                uint32_t arg_hi) {
  // First entry: close the fiber-switch protocol on the fresh stack (null
  // handle — there are no frames to restore; see ctx_make_asm.cpp's boot)
  // and the lock-rank checker's in-switch window.
  sys::lockrank_ctx_switch_end();
  sys::san_finish_switch(nullptr);
  auto entry = reinterpret_cast<EntryFn>(
      (uint64_t{entry_hi} << 32) | entry_lo);
  auto* arg = reinterpret_cast<void*>((uint64_t{arg_hi} << 32) | arg_lo);
  entry(arg);
  PM2_FATAL("thread entry returned; it must end in exit_current()");
}
}  // namespace

void* ctx_make(void* stack_base, void* stack_top, EntryFn entry, void* arg) {
  // Embed the initial ucontext_t just below the stack top; the usable stack
  // is everything between stack_base and the embedded context.
  auto top = reinterpret_cast<uintptr_t>(stack_top) & ~uintptr_t{63};
  top -= sizeof(ucontext_t);
  top &= ~uintptr_t{63};
  auto* uc = reinterpret_cast<ucontext_t*>(top);
  PM2_CHECK(::getcontext(uc) == 0);
  uc->uc_link = nullptr;
  uc->uc_stack.ss_sp = stack_base;
  uc->uc_stack.ss_size = top - reinterpret_cast<uintptr_t>(stack_base);
  PM2_CHECK(uc->uc_stack.ss_size >= 16 * 1024) << "stack too small";
  auto ep = reinterpret_cast<uint64_t>(entry);
  auto ap = reinterpret_cast<uint64_t>(arg);
  ::makecontext(uc, reinterpret_cast<void (*)()>(trampoline), 4,
                static_cast<uint32_t>(ep), static_cast<uint32_t>(ep >> 32),
                static_cast<uint32_t>(ap), static_cast<uint32_t>(ap >> 32));
  return uc;
}

}  // namespace pm2::marcel
