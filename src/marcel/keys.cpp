#include "marcel/keys.hpp"

#include <atomic>

#include "common/check.hpp"
#include "marcel/scheduler.hpp"

namespace pm2::marcel {

namespace {
// Process-wide: in-process multi-node sessions share the key space, which
// matches the SPMD requirement (same keys everywhere).
std::atomic<uint32_t> g_next_key{0};
}  // namespace

Key key_create() {
  uint32_t key = g_next_key.fetch_add(1);
  PM2_CHECK(key < Thread::kMaxKeys)
      << "out of thread-specific keys (max " << Thread::kMaxKeys << ")";
  return key;
}

uint32_t keys_allocated() { return g_next_key.load(); }

void thread_setspecific(Thread* t, Key key, void* value) {
  PM2_CHECK(t != nullptr && key < Thread::kMaxKeys);
  t->specific[key] = value;
}

void* thread_getspecific(Thread* t, Key key) {
  PM2_CHECK(t != nullptr && key < Thread::kMaxKeys);
  return t->specific[key];
}

void setspecific(Key key, void* value) {
  thread_setspecific(Scheduler::self(), key, value);
}

void* getspecific(Key key) { return thread_getspecific(Scheduler::self(), key); }

}  // namespace pm2::marcel
