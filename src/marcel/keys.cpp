#include "marcel/keys.hpp"

#include <atomic>

#include "common/check.hpp"
#include "marcel/scheduler.hpp"

namespace pm2::marcel {

namespace {
// Process-wide: in-process multi-node sessions share the key space, which
// matches the SPMD requirement (same keys everywhere).  Destructors are
// registered once per key; the table is append-only (keys are never
// recycled).  Entries are atomic so a worker running another thread's exit
// destructors reads a key registered concurrently on a peer worker without
// a race: key_create publishes the function pointer with release, readers
// acquire (a reader that still misses the store sees null and skips — the
// key was not usable before key_create returned anyway).
std::atomic<uint32_t> g_next_key{0};
std::atomic<KeyDtor> g_dtors[Thread::kMaxKeys] = {};
}  // namespace

Key key_create(KeyDtor dtor) {
  uint32_t key = g_next_key.fetch_add(1);
  PM2_CHECK(key < Thread::kMaxKeys)
      << "out of thread-specific keys (max " << Thread::kMaxKeys << ")";
  g_dtors[key].store(dtor, std::memory_order_release);
  return key;
}

void run_key_destructors(Thread* t) {
  PM2_CHECK(t != nullptr);
  uint32_t n = g_next_key.load();
  if (n > Thread::kMaxKeys) n = Thread::kMaxKeys;
  for (uint32_t key = 0; key < n; ++key) {
    void* value = t->specific[key];
    KeyDtor dtor = g_dtors[key].load(std::memory_order_acquire);
    if (value == nullptr || dtor == nullptr) continue;
    t->specific[key] = nullptr;  // pthread semantics: clear before calling
    dtor(value);
  }
}

uint32_t keys_allocated() { return g_next_key.load(); }

void thread_setspecific(Thread* t, Key key, void* value) {
  PM2_CHECK(t != nullptr && key < Thread::kMaxKeys);
  t->specific[key] = value;
}

void* thread_getspecific(Thread* t, Key key) {
  PM2_CHECK(t != nullptr && key < Thread::kMaxKeys);
  return t->specific[key];
}

void setspecific(Key key, void* value) {
  thread_setspecific(Scheduler::self(), key, value);
}

void* getspecific(Key key) { return thread_getspecific(Scheduler::self(), key); }

}  // namespace pm2::marcel
