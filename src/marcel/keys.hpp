// Thread-specific data keys (the classic marcel_key_* interface).
//
// Values are stored inline in the thread descriptor (Thread::specific), so
// they travel with the thread on migration — in particular a pointer to
// iso-memory stays valid on the destination node.  Key ids are allocated
// from a process-wide counter; under SPMD they match across nodes when
// every node allocates its keys in the same deterministic order during
// startup (the same discipline the RPC service table requires).
#pragma once

#include <cstdint>

#include "marcel/thread.hpp"

namespace pm2::marcel {

using Key = uint32_t;
/// Per-key value destructor (pthread_key_create semantics): runs at thread
/// exit for every key whose value is non-null, on the exiting thread's own
/// context, with the value already cleared from the slot.  SPMD caveat: the
/// destructor runs on the node the thread *exits* on, so it must only touch
/// the value itself (iso-memory travels; node-local captures do not).
using KeyDtor = void (*)(void*);

/// Allocate a fresh key (aborts after Thread::kMaxKeys keys).  `dtor`, if
/// non-null, is invoked by the scheduler when a thread exits with a
/// non-null value for this key — the hook that keeps pooled service
/// threads from leaking per-invocation state across re-arms.
Key key_create(KeyDtor dtor = nullptr);

/// Set/get the calling thread's value for `key` (nullptr default).
void setspecific(Key key, void* value);
void* getspecific(Key key);

/// Same, for an explicit (frozen/ready) thread — used by runtime services.
void thread_setspecific(Thread* t, Key key, void* value);
void* thread_getspecific(Thread* t, Key key);

/// Run the allocated keys' destructors over `t`'s non-null values, nulling
/// each slot first (a destructor that re-sets its key is tolerated but the
/// new value is not revisited — single pass).  Called by the scheduler on
/// the exiting thread's context; idempotent once all values are null.
void run_key_destructors(Thread* t);

/// Number of keys allocated so far (diagnostics/tests).
uint32_t keys_allocated();

}  // namespace pm2::marcel
