// Thread-specific data keys (the classic marcel_key_* interface).
//
// Values are stored inline in the thread descriptor (Thread::specific), so
// they travel with the thread on migration — in particular a pointer to
// iso-memory stays valid on the destination node.  Key ids are allocated
// from a process-wide counter; under SPMD they match across nodes when
// every node allocates its keys in the same deterministic order during
// startup (the same discipline the RPC service table requires).
#pragma once

#include <cstdint>

#include "marcel/thread.hpp"

namespace pm2::marcel {

using Key = uint32_t;

/// Allocate a fresh key (aborts after Thread::kMaxKeys keys).
Key key_create();

/// Set/get the calling thread's value for `key` (nullptr default).
void setspecific(Key key, void* value);
void* getspecific(Key key);

/// Same, for an explicit (frozen/ready) thread — used by runtime services.
void thread_setspecific(Thread* t, Key key, void* value);
void* thread_getspecific(Thread* t, Key key);

/// Number of keys allocated so far (diagnostics/tests).
uint32_t keys_allocated();

}  // namespace pm2::marcel
