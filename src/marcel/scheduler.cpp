#include "marcel/scheduler.hpp"

#include <unistd.h>

#include <cstring>

#include "common/check.hpp"
#include "common/time.hpp"
#include "marcel/keys.hpp"
#include "sys/sanitizer.hpp"

namespace pm2::marcel {

namespace {
thread_local Scheduler* t_scheduler = nullptr;
}  // namespace

const char* to_string(ThreadState s) {
  switch (s) {
    case ThreadState::kReady:
      return "ready";
    case ThreadState::kRunning:
      return "running";
    case ThreadState::kBlocked:
      return "blocked";
    case ThreadState::kFrozen:
      return "frozen";
    case ThreadState::kDead:
      return "dead";
  }
  return "?";
}

void Thread::arm_canary() {
  *reinterpret_cast<uint64_t*>(stack_base) = kCanary;
}

bool Thread::canary_ok() const {
  return *reinterpret_cast<const uint64_t*>(stack_base) == kCanary;
}

Scheduler::Scheduler() = default;

Scheduler::~Scheduler() {
  PM2_CHECK(current_ == nullptr) << "scheduler destroyed while dispatching";
}

Scheduler* Scheduler::current_scheduler() { return t_scheduler; }

Thread* Scheduler::self() {
  return t_scheduler != nullptr ? t_scheduler->current_ : nullptr;
}

SchedulerBinding::SchedulerBinding(Scheduler* sched) : prev_(t_scheduler) {
  t_scheduler = sched;
}

SchedulerBinding::~SchedulerBinding() { t_scheduler = prev_; }

Thread* Scheduler::create(void* region, size_t region_size, EntryFn entry,
                          void* arg, ThreadId id, const char* name,
                          uint32_t flags) {
  PM2_CHECK(region != nullptr);
  auto base = reinterpret_cast<uintptr_t>(region);
  PM2_CHECK(base % alignof(Thread) == 0) << "misaligned thread region";
  PM2_CHECK(region_size >= sizeof(Thread) + 16 * 1024)
      << "thread region too small: " << region_size;

  auto* t = new (region) Thread();
  t->id = id;
  t->flags = flags;
  std::strncpy(t->name, name != nullptr ? name : "", Thread::kNameLen - 1);

  uintptr_t stack_base = (base + sizeof(Thread) + 63) & ~uintptr_t{63};
  uintptr_t stack_top = (base + region_size) & ~uintptr_t{15};
  t->stack_base = reinterpret_cast<void*>(stack_base);
  t->stack_top = reinterpret_cast<void*>(stack_top);
  // The region may be a recycled slot whose previous tenant left redzone
  // poison behind (frames never unwind on exit/migration): this is a fresh
  // logical stack, scrub its shadow.
  sys::san_unpoison(t->stack_base, stack_top - stack_base);
  t->arm_canary();
  t->sp = ctx_make(t->stack_base, t->stack_top, entry, arg);

  PM2_CHECK(registry_.emplace(id, t).second) << "duplicate thread id " << id;
  if (!t->is_daemon()) ++live_;
  push_ready(t);
  return t;
}

Thread* Scheduler::rearm(Thread* t, EntryFn entry, void* arg, ThreadId id,
                         const char* name, uint32_t flags) {
  PM2_CHECK(t != nullptr && t->magic == Thread::kMagic)
      << "rearm on corrupt descriptor";
  PM2_CHECK(t->state == ThreadState::kDead)
      << "rearm on " << to_string(t->state) << " thread";
  t->id = id;
  t->flags = flags;
  std::strncpy(t->name, name != nullptr ? name : "", Thread::kNameLen - 1);
  t->name[Thread::kNameLen - 1] = '\0';
  t->user_fn = nullptr;
  t->user_arg = nullptr;
  std::memset(t->specific, 0, sizeof(t->specific));
  t->qnext = nullptr;
  t->qprev = nullptr;
  t->wait_queue = nullptr;
  t->joiner = nullptr;
  t->done = false;
  t->san_fake_stack = nullptr;
  // Stack bounds are unchanged; only the context restarts from scratch.
  // The invocation pool poisoned the parked stack — lift that before the
  // canary and the fresh initial frame are written.
  sys::san_unpoison(t->stack_base, t->stack_size());
  t->arm_canary();
  t->sp = ctx_make(t->stack_base, t->stack_top, entry, arg);
  PM2_CHECK(registry_.emplace(id, t).second) << "duplicate thread id " << id;
  if (!t->is_daemon()) ++live_;
  push_ready(t);
  return t;
}

void Scheduler::push_ready(Thread* t) {
  t->state = ThreadState::kReady;
  t->qnext = nullptr;
  t->qprev = ready_tail_;
  if (ready_tail_ != nullptr)
    ready_tail_->qnext = t;
  else
    ready_head_ = t;
  ready_tail_ = t;
  ++ready_count_;
}

void Scheduler::push_ready_front(Thread* t) {
  t->state = ThreadState::kReady;
  t->qprev = nullptr;
  t->qnext = ready_head_;
  if (ready_head_ != nullptr)
    ready_head_->qprev = t;
  else
    ready_tail_ = t;
  ready_head_ = t;
  ++ready_count_;
}

Thread* Scheduler::pop_ready() {
  Thread* t = ready_head_;
  if (t == nullptr) return nullptr;
  ready_head_ = t->qnext;
  if (ready_head_ != nullptr)
    ready_head_->qprev = nullptr;
  else
    ready_tail_ = nullptr;
  t->qnext = nullptr;
  t->qprev = nullptr;
  --ready_count_;
  return t;
}

void Scheduler::dispatch(Thread* t) {
  PM2_DCHECK(t->state == ThreadState::kReady);
  PM2_DCHECK(t->magic == Thread::kMagic) << "corrupt thread descriptor";
  current_ = t;
  t->state = ThreadState::kRunning;
  ++switches_;
  slice_start_ns_ = now_ns();
  sys::san_start_switch(&san_sched_fake_, t->stack_base, t->stack_size());
  pm2_ctx_switch(&sched_sp_, t->sp);
  sys::san_finish_switch(san_sched_fake_);
  // The thread switched back (yield/block/exit/freeze).  Its memory is
  // still mapped even if it exited — the reaper continuation has not run
  // yet — so the overflow canary can be verified on every switch.
  PM2_CHECK(t->canary_ok())
      << "stack overflow detected on thread " << t->id << " (" << t->name
      << "): the stack ran into its descriptor";
  current_ = nullptr;
}

void Scheduler::fire_expired_timers() {
  if (timers_.empty()) return;
  uint64_t now = now_ns();
  while (!timers_.empty() && timers_.begin()->first <= now) {
    Thread* t = timers_.begin()->second;
    timers_.erase(timers_.begin());
    PM2_DCHECK(t->state == ThreadState::kBlocked);
    push_ready(t);
  }
}

uint64_t Scheduler::ns_until_next_timer() const {
  if (timers_.empty()) return UINT64_MAX;
  uint64_t deadline = timers_.begin()->first;
  uint64_t now = now_ns();
  return deadline > now ? deadline - now : 0;
}

void Scheduler::switch_to_scheduler(Thread* t) {
  sys::san_start_switch(&t->san_fake_stack, san_stack_bottom_,
                        san_stack_size_);
  pm2_ctx_switch(&t->sp, sched_sp_);
  // The thread may have been resumed under a *different* scheduler after a
  // migration: `this` must not be touched, but `t` is iso-addressed and
  // therefore valid on any node.  The parked fake-stack handle is only
  // meaningful on the kernel thread that parked it — install_thread nulls
  // it for migrated-in stacks, so this hands ASan null exactly when the
  // frames were built elsewhere.
  void* fake = t->san_fake_stack;
  t->san_fake_stack = nullptr;
  sys::san_finish_switch(fake);
}

void Scheduler::run() {
  SchedulerBinding bind(this);
  sys::san_current_stack(&san_stack_bottom_, &san_stack_size_);
  while (true) {
    fire_expired_timers();
    Thread* t = pop_ready();
    if (t != nullptr) {
      dispatch(t);
      if (post_) {
        // Run exit/freeze continuation on the scheduler stack, where the
        // departing thread's stack is guaranteed quiescent.
        Continuation cont = std::move(post_);
        post_ = nullptr;
        Thread* pt = post_thread_;
        post_thread_ = nullptr;
        cont(pt);
      }
      continue;
    }
    if (stop_requested_ && registry_.empty()) break;
    if (!timers_.empty()) {
      // Park the kernel thread until the nearest deadline instead of
      // busy-waiting: a sleeping thread is the only local wake source
      // (cross-node events are owned by the comm daemon, which is a
      // thread and therefore never leaves the scheduler idle).
      timespec until;
      uint64_t deadline = timers_.begin()->first;
      until.tv_sec = static_cast<time_t>(deadline / 1'000'000'000ull);
      until.tv_nsec = static_cast<long>(deadline % 1'000'000'000ull);
      ::clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &until, nullptr);
      continue;
    }
    // No runnable thread, no timer, no event source: with a cooperative
    // scheduler this state can never resolve itself.
    PM2_CHECK(!registry_.empty())
        << "scheduler idle with empty registry but no stop request";
    PM2_FATAL("deadlock: all threads blocked/frozen");
  }
}

void Scheduler::yield() {
  Thread* t = current_;
  PM2_CHECK(t != nullptr) << "yield() outside a thread";
  push_ready(t);
  switch_to_scheduler(t);
  // NOTE: nothing after the switch may touch `this` — after a migration a
  // resumed thread continues under a *different* scheduler instance.
}

void Scheduler::block() {
  Thread* t = current_;
  PM2_CHECK(t != nullptr) << "block() outside a thread";
  t->state = ThreadState::kBlocked;
  switch_to_scheduler(t);
}

void Scheduler::sleep_us(uint64_t us) {
  Thread* t = current_;
  PM2_CHECK(t != nullptr) << "sleep_us() outside a thread";
  if (us == 0) {
    yield();
    return;
  }
  timers_.emplace(now_ns() + us * 1000, t);
  t->state = ThreadState::kBlocked;
  switch_to_scheduler(t);
}

void Scheduler::unblock(Thread* t, bool front) {
  PM2_CHECK(t->state == ThreadState::kBlocked)
      << "unblock on " << to_string(t->state) << " thread";
  t->wait_queue = nullptr;
  if (front)
    push_ready_front(t);
  else
    push_ready(t);
}

void Scheduler::exit_current(Continuation reaper) {
  Thread* t = current_;
  PM2_CHECK(t != nullptr) << "exit_current() outside a thread";
  // TSD destructors run on the exiting thread's own context, while its
  // stack and iso-heap are still intact — a destructor may isofree the
  // value it owns.  After this, every destructor-bearing key is null, so
  // no per-invocation state survives into a pooled re-arm.
  run_key_destructors(t);
  t->state = ThreadState::kDead;
  t->done = true;
  if (t->joiner != nullptr) {
    unblock(t->joiner);
    t->joiner = nullptr;
  }
  registry_.erase(t->id);
  if (!t->is_daemon()) --live_;
  post_ = std::move(reaper);
  post_thread_ = t;
  switch_out_forever(t);
}

void Scheduler::switch_out_forever(Thread* t) {
  // Null save slot: the context never runs again, so ASan may release its
  // fake-stack frames instead of keeping them alive forever.
  sys::san_start_switch(nullptr, san_stack_bottom_, san_stack_size_);
  pm2_ctx_switch(&t->sp, sched_sp_);
  PM2_FATAL("dead/shipped thread was resumed");
}

bool Scheduler::join(ThreadId id) {
  Thread* self_t = current_;
  PM2_CHECK(self_t != nullptr) << "join() outside a thread";
  Thread* t = find(id);
  if (t == nullptr || t->done) return false;
  PM2_CHECK(t != self_t) << "thread joining itself";
  PM2_CHECK(t->joiner == nullptr) << "thread " << id << " already has a joiner";
  t->joiner = self_t;
  block();
  return true;
}

bool Scheduler::freeze(Thread* t) {
  if (t == nullptr || t == current_) return false;
  if (t->state != ThreadState::kReady) return false;
  // Unlink from the ready FIFO.
  if (t->qprev != nullptr)
    t->qprev->qnext = t->qnext;
  else
    ready_head_ = t->qnext;
  if (t->qnext != nullptr)
    t->qnext->qprev = t->qprev;
  else
    ready_tail_ = t->qprev;
  t->qnext = nullptr;
  t->qprev = nullptr;
  --ready_count_;
  t->state = ThreadState::kFrozen;
  return true;
}

void Scheduler::unfreeze(Thread* t) {
  PM2_CHECK(t->state == ThreadState::kFrozen)
      << "unfreeze on " << to_string(t->state) << " thread";
  push_ready(t);
}

void Scheduler::freeze_current_and(Continuation cont) {
  Thread* t = current_;
  PM2_CHECK(t != nullptr) << "freeze_current_and() outside a thread";
  t->state = ThreadState::kFrozen;
  post_ = std::move(cont);
  post_thread_ = t;
  switch_to_scheduler(t);
  // Resumes here after adopt() — usually on another node.  Only TLS
  // lookups are valid beyond this point (see header).
}

void Scheduler::adopt(Thread* t) {
  PM2_CHECK(t->magic == Thread::kMagic) << "corrupt migrated descriptor";
  t->qnext = nullptr;
  t->qprev = nullptr;
  t->wait_queue = nullptr;
  t->joiner = nullptr;
  t->done = false;
  PM2_CHECK(registry_.emplace(t->id, t).second)
      << "adopt: duplicate thread id " << t->id;
  if (!t->is_daemon()) ++live_;
  push_ready(t);
}

void Scheduler::forget(Thread* t) {
  size_t erased = registry_.erase(t->id);
  PM2_CHECK(erased == 1) << "forget: unknown thread " << t->id;
  if (!t->is_daemon()) --live_;
}

void Scheduler::maybe_preempt() {
  if (quantum_ns_ == 0 || current_ == nullptr) return;
  if (now_ns() - slice_start_ns_ >= quantum_ns_) yield();
}

Thread* Scheduler::find(ThreadId id) const {
  auto it = registry_.find(id);
  return it == registry_.end() ? nullptr : it->second;
}

void Scheduler::for_each(const std::function<void(Thread*)>& fn) const {
  for (const auto& [id, t] : registry_) fn(t);
}

}  // namespace pm2::marcel
