#include "marcel/scheduler.hpp"

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "common/check.hpp"
#include "common/time.hpp"
#include "marcel/keys.hpp"
#include "sys/backoff.hpp"
#include "sys/sanitizer.hpp"

namespace pm2::marcel {

namespace {
thread_local Scheduler* t_scheduler = nullptr;
thread_local uint32_t t_worker = kNoWorker;

/// Idle workers re-check the world at least this often even with no wake
/// signal (lost-wakeup backstop; normal wakeups are explicit notifies).
constexpr uint64_t kIdleBackstopNs = 100'000'000;  // 100 ms
}  // namespace

const char* to_string(ThreadState s) {
  switch (s) {
    case ThreadState::kReady:
      return "ready";
    case ThreadState::kRunning:
      return "running";
    case ThreadState::kBlocked:
      return "blocked";
    case ThreadState::kFrozen:
      return "frozen";
    case ThreadState::kDead:
      return "dead";
  }
  return "?";
}

void Thread::arm_canary() {
  *reinterpret_cast<uint64_t*>(stack_base) = kCanary;
}

bool Thread::canary_ok() const {
  return *reinterpret_cast<const uint64_t*>(stack_base) == kCanary;
}

Scheduler::Scheduler(uint32_t workers)
    : n_workers_(workers == 0 ? 1 : workers),
      registry_(sys::LockRank::kRegistryShard) {
  workers_.reserve(n_workers_);
  for (uint32_t i = 0; i < n_workers_; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    workers_.back()->rng = 0x9E3779B97F4A7C15ull * (i + 1) + 1;
  }
}

Scheduler::~Scheduler() {
  for (const auto& w : workers_)
    PM2_CHECK(w->current == nullptr) << "scheduler destroyed while dispatching";
}

Scheduler* Scheduler::current_scheduler() { return t_scheduler; }

Thread* Scheduler::self() {
  if (t_scheduler == nullptr || t_worker == kNoWorker) return nullptr;
  return t_scheduler->workers_[t_worker]->current;
}

uint32_t Scheduler::current_worker() { return t_worker; }

uint32_t Scheduler::home_worker() const {
  return (t_scheduler == this && t_worker != kNoWorker) ? t_worker : 0;
}

bool Scheduler::on_worker(uint32_t idx) const {
  return t_scheduler == this && t_worker == idx;
}

SchedulerBinding::SchedulerBinding(Scheduler* sched) : prev_(t_scheduler) {
  t_scheduler = sched;
}

SchedulerBinding::~SchedulerBinding() { t_scheduler = prev_; }

// --- registry --------------------------------------------------------------

void Scheduler::register_thread(Thread* t) {
  auto [slot, inserted] = registry_.try_emplace(t->id, t);
  (void)slot;
  PM2_CHECK(inserted) << "duplicate thread id " << t->id;
  registry_count_.fetch_add(1, std::memory_order_relaxed);
  if (!t->is_daemon()) live_.fetch_add(1, std::memory_order_relaxed);
}

Thread* Scheduler::find(ThreadId id) const {
  // Copy under the stripe lock: a concurrent exit may erase the id (and
  // free the map node) the instant the lock drops.  The descriptor itself
  // lives in its slot region, not in the node, so the returned pointer is
  // as valid as it ever was — callers revalidate via state as before.
  Thread* t = nullptr;
  return registry_.find_copy(id, &t) ? t : nullptr;
}

void Scheduler::for_each(const std::function<void(Thread*)>& fn) const {
  // StripedMap snapshots stripe by stripe and calls back outside the stripe
  // locks: fn may look threads up again or take other locks.
  registry_.for_each_value(fn);
}

// --- thread lifecycle ------------------------------------------------------

Thread* Scheduler::create(void* region, size_t region_size, EntryFn entry,
                          void* arg, ThreadId id, const char* name,
                          uint32_t flags, bool start_frozen) {
  PM2_CHECK(region != nullptr);
  auto base = reinterpret_cast<uintptr_t>(region);
  PM2_CHECK(base % alignof(Thread) == 0) << "misaligned thread region";
  PM2_CHECK(region_size >= sizeof(Thread) + 16 * 1024)
      << "thread region too small: " << region_size;

  auto* t = new (region) Thread();
  t->id = id;
  t->flags = flags;
  std::strncpy(t->name, name != nullptr ? name : "", Thread::kNameLen - 1);

  uintptr_t stack_base = (base + sizeof(Thread) + 63) & ~uintptr_t{63};
  uintptr_t stack_top = (base + region_size) & ~uintptr_t{15};
  t->stack_base = reinterpret_cast<void*>(stack_base);
  t->stack_top = reinterpret_cast<void*>(stack_top);
  // The region may be a recycled slot whose previous tenant left redzone
  // poison behind (frames never unwind on exit/migration): this is a fresh
  // logical stack, scrub its shadow.
  sys::san_unpoison(t->stack_base, stack_top - stack_base);
  t->arm_canary();
  t->sp = ctx_make(t->stack_base, t->stack_top, entry, arg);
  t->tsan_fiber = sys::san_fiber_create();

  uint32_t home = home_worker();
  t->affinity = (flags & Thread::kFlagPinned) != 0 ? home : kNoWorker;
  t->last_worker = home;
  // A frozen newborn is registered (findable) but unpublished: the creator
  // finishes the descriptor, and unfreeze()'s push_ready is the release
  // store a stealing worker acquires.
  if (start_frozen)
    t->state.store(ThreadState::kFrozen, std::memory_order_relaxed);
  register_thread(t);
  if (!start_frozen) push_ready(t, home);
  return t;
}

Thread* Scheduler::rearm(Thread* t, EntryFn entry, void* arg, ThreadId id,
                         const char* name, uint32_t flags, bool start_frozen) {
  PM2_CHECK(t != nullptr && t->magic == Thread::kMagic)
      << "rearm on corrupt descriptor";
  PM2_CHECK(t->state == ThreadState::kDead)
      << "rearm on " << to_string(t->state) << " thread";
  t->id = id;
  t->flags = flags;
  std::strncpy(t->name, name != nullptr ? name : "", Thread::kNameLen - 1);
  t->name[Thread::kNameLen - 1] = '\0';
  t->user_fn = nullptr;
  t->user_arg = nullptr;
  std::memset(t->specific, 0, sizeof(t->specific));
  t->qnext = nullptr;
  t->qprev = nullptr;
  t->wait_queue = nullptr;
  t->joiner = nullptr;
  t->done = false;
  t->san_fake_stack = nullptr;
  t->running_on.store(kNoWorker, std::memory_order_relaxed);
  t->park_mode = ParkMode::kYield;
  t->san_worker = kNoWorker;
  // Stack bounds are unchanged; only the context restarts from scratch.
  // The invocation pool poisoned the parked stack — lift that before the
  // canary and the fresh initial frame are written.
  sys::san_unpoison(t->stack_base, t->stack_size());
  t->arm_canary();
  t->sp = ctx_make(t->stack_base, t->stack_top, entry, arg);
  // The exit epilogue destroyed the previous invocation's TSan fiber; the
  // recycled context gets a fresh one.
  t->tsan_fiber = sys::san_fiber_create();
  uint32_t home = home_worker();
  t->affinity = (flags & Thread::kFlagPinned) != 0 ? home : kNoWorker;
  t->last_worker = home;
  if (start_frozen)
    t->state.store(ThreadState::kFrozen, std::memory_order_relaxed);
  register_thread(t);
  if (!start_frozen) push_ready(t, home);
  return t;
}

// --- ready containers ------------------------------------------------------

void Scheduler::inbox_push(Worker& w, Thread* t) {
  // Treiber push.  The release CAS pairs with the drain's acquire exchange,
  // ordering the qnext write (and the whole descriptor) before the owner
  // reads the chain.
  t->qnext = w.inbox.load(std::memory_order_relaxed);
  while (!w.inbox.compare_exchange_weak(t->qnext, t,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
  }
}

void Scheduler::drain_inbox(Worker& w, uint32_t idx) {
  if (w.inbox.load(std::memory_order_relaxed) == nullptr) return;
  Thread* n = w.inbox.exchange(nullptr, std::memory_order_acquire);
  // The Treiber stack yields newest-first; reverse to FIFO arrival order
  // before routing, so remote pushes keep round-robin fairness.
  Thread* rev = nullptr;
  while (n != nullptr) {
    Thread* nx = n->qnext;
    n->qnext = rev;
    rev = n;
    n = nx;
  }
  while (rev != nullptr) {
    Thread* nx = rev->qnext;
    rev->qnext = nullptr;
    if (n_workers_ > 1 && rev->affinity != kNoWorker) {
      PM2_DCHECK(rev->affinity == idx);
      if (w.pinned_tail != nullptr)
        w.pinned_tail->qnext = rev;
      else
        w.pinned_head = rev;
      w.pinned_tail = rev;
    } else {
      w.deque.push_bottom(rev);
    }
    rev = nx;
  }
}

void Scheduler::push_ready(Thread* t, uint32_t w_idx, bool front) {
  PM2_DCHECK(w_idx < n_workers_);
  Worker& w = *workers_[w_idx];
  t->queue_worker.store(w_idx, std::memory_order_relaxed);
  // Publication point (ROADMAP obligation (a)): everything written to the
  // descriptor so far — user_fn/user_arg from a frozen create/rearm, the
  // saved context, queue_worker above — is released here; a consumer that
  // takes the thread from any container acquires state before touching it.
  // The container ops (Chase-Lev push/steal, mailbox exchange, inbox CAS)
  // carry their own release/acquire edge on top.
  t->state.store(ThreadState::kReady, std::memory_order_release);
  if (front) {
    // Direct handoff: single-slot mailbox, checked before everything else
    // by the owner.  A displaced occupant (two handoffs racing) overflows
    // into the inbox and keeps its ready accounting.
    Thread* prev = w.handoff.exchange(t, std::memory_order_acq_rel);
    if (prev != nullptr) inbox_push(w, prev);
    w.handoffs.fetch_add(1, std::memory_order_relaxed);
  } else if (on_worker(w_idx)) {
    if (n_workers_ > 1 && t->affinity != kNoWorker) {
      PM2_DCHECK(t->affinity == w_idx);
      t->qnext = nullptr;
      if (w.pinned_tail != nullptr)
        w.pinned_tail->qnext = t;
      else
        w.pinned_head = t;
      w.pinned_tail = t;
    } else {
      w.deque.push_bottom(t);
    }
  } else {
    // Chase-Lev pushes are owner-only; remote producers go via the inbox.
    inbox_push(w, t);
  }
  w.ready.fetch_add(1);  // seq_cst: meets the idle-park protocol

  if (n_workers_ == 1) return;
  uint32_t me = (t_scheduler == this) ? t_worker : kNoWorker;
  if (w_idx != me) {
    wake_worker(w_idx);
    // Worker 0's kernel thread may be parked deep inside the comm daemon's
    // blocking fabric receive, where no condvar reaches it.
    if (w_idx == 0 && me != 0 && external_wake_) external_wake_();
  } else if (w.ready.load(std::memory_order_relaxed) > 1 &&
             n_parked_.load(std::memory_order_relaxed) > 0) {
    // Local surplus: give an idle peer a chance to steal.
    for (uint32_t i = 0; i < n_workers_; ++i) {
      if (i != w_idx && workers_[i]->parked.load(std::memory_order_relaxed)) {
        wake_worker(i);
        break;
      }
    }
  }
}

void Scheduler::claim(Thread* t, uint32_t idx) {
  // The container's exactly-once removal (top CAS / exchange / owner drain)
  // made this worker the sole claimant; the acquire load pairs with
  // push_ready's release store, so the descriptor reads below — and the
  // first dispatch's user_fn/user_arg reads — see the producer's writes.
  ThreadState s = t->state.load(std::memory_order_acquire);
  PM2_DCHECK(s == ThreadState::kReady)
      << "claimed a " << to_string(s) << " thread";
  (void)s;
  t->state.store(ThreadState::kRunning, std::memory_order_relaxed);
  t->running_on.store(idx, std::memory_order_relaxed);
  t->last_worker = idx;
}

Thread* Scheduler::pop_local(Worker& w, uint32_t idx) {
  // 1. Handoff mailbox: direct handoffs dispatch before any peer.
  if (w.handoff.load(std::memory_order_relaxed) != nullptr) {
    Thread* t = w.handoff.exchange(nullptr, std::memory_order_acquire);
    if (t != nullptr) {
      w.ready.fetch_sub(1);
      claim(t, idx);
      return t;
    }
  }
  // `ready` counts all four containers; a zero read means they were all
  // empty at some recent instant — good enough for the fast path (the
  // idle-park protocol closes the race).
  if (w.ready.load(std::memory_order_relaxed) == 0) return nullptr;
  // 2. Remote pushes land in the owner's containers.
  drain_inbox(w, idx);
  // 3./4. Pinned FIFO and deque, alternating so neither starves the other
  // (the comm daemon is pinned work and must not be starved by a full
  // deque — nor vice versa).
  Thread* t = nullptr;
  bool prefer_pinned = (++w.pop_tick & 1) != 0;
  for (int round = 0; round < 2 && t == nullptr; ++round) {
    if (prefer_pinned) {
      if (w.pinned_head != nullptr) {
        t = w.pinned_head;
        w.pinned_head = t->qnext;
        if (w.pinned_head == nullptr) w.pinned_tail = nullptr;
        t->qnext = nullptr;
      }
    } else {
      // Owner takes from the *top* (steal side) so dispatch order stays
      // FIFO — round-robin fairness, same as the spinlocked deque had.
      t = w.deque.steal();
    }
    prefer_pinned = !prefer_pinned;
  }
  if (t == nullptr) return nullptr;
  w.ready.fetch_sub(1);
  claim(t, idx);
  return t;
}

Thread* Scheduler::try_steal(uint32_t thief) {
  Worker& me = *workers_[thief];
  uint64_t x = me.rng;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  me.rng = x;
  uint32_t start = static_cast<uint32_t>(x % n_workers_);
  bool saw_work = false;
  for (uint32_t k = 0; k < n_workers_; ++k) {
    uint32_t v = (start + k) % n_workers_;
    if (v == thief) continue;
    Worker& vic = *workers_[v];
    if (vic.ready.load(std::memory_order_relaxed) == 0) continue;
    saw_work = true;
    Thread* t = vic.deque.steal();
    if (t != nullptr) {
      vic.ready.fetch_sub(1);
      claim(t, thief);
      me.steals.fetch_add(1, std::memory_order_relaxed);
      return t;
    }
  }
  if (saw_work) {
    // Nothing stealable on any deque — the work may be a handoff parked in
    // the mailbox of a worker that is busy running something long.  Poach
    // it rather than idle (the old deque-front handoff was stealable too).
    for (uint32_t k = 0; k < n_workers_; ++k) {
      uint32_t v = (start + k) % n_workers_;
      if (v == thief) continue;
      Worker& vic = *workers_[v];
      if (vic.handoff.load(std::memory_order_relaxed) == nullptr) continue;
      Thread* h = vic.handoff.exchange(nullptr, std::memory_order_acquire);
      if (h == nullptr) continue;
      if (h->affinity != kNoWorker && h->affinity != thief) {
        // Pinned to the victim: put it back where its owner will find it.
        inbox_push(vic, h);
        wake_worker(v);
        continue;
      }
      vic.ready.fetch_sub(1);
      claim(h, thief);
      me.steals.fetch_add(1, std::memory_order_relaxed);
      return h;
    }
    me.steal_failures.fetch_add(1, std::memory_order_relaxed);
  }
  return nullptr;
}

// --- dispatch --------------------------------------------------------------

void Scheduler::dispatch(Worker& w, uint32_t idx, Thread* t) {
  PM2_DCHECK(t->state == ThreadState::kRunning);
  PM2_DCHECK(t->magic == Thread::kMagic) << "corrupt thread descriptor";
  w.current = t;
  w.dispatches.fetch_add(1, std::memory_order_relaxed);
  w.slice_start_ns = now_ns();
  sys::san_start_switch(&w.san_sched_fake, t->stack_base, t->stack_size());
  sys::san_fiber_switch(t->tsan_fiber);
  sys::lockrank_ctx_switch_begin();
  pm2_ctx_switch(&w.sched_sp, t->sp);
  sys::lockrank_ctx_switch_end();
  sys::san_finish_switch(w.san_sched_fake);
  // The thread switched back (yield/block/exit/freeze).  Its memory is
  // still mapped even if it exited — the reaper continuation has not run
  // yet — so the overflow canary can be verified on every switch.
  PM2_CHECK(t->canary_ok())
      << "stack overflow detected on thread " << t->id << " (" << t->name
      << "): the stack ran into its descriptor";
  // Iso-address one-owner invariant: the stack run we just dispatched must
  // have been owned by this worker for the whole slice.
  PM2_DCHECK(t->running_on.load(std::memory_order_relaxed) == idx)
      << "thread " << t->id << " dispatched by worker " << idx
      << " without owning it";
  ParkMode mode = t->park_mode;
  w.current = nullptr;
  if (mode == ParkMode::kDone && t->done) {
    // The context exited and never runs again; release its TSan state now,
    // before w.post (the reaper) releases or pool-parks the slot memory the
    // descriptor lives in.  Pool re-arm creates a fresh fiber.
    sys::san_fiber_destroy(t->tsan_fiber);
    t->tsan_fiber = nullptr;
  }
  // Only now is the context fully saved: release ownership so a racing
  // unblock()/steal may requeue and re-dispatch the thread.
  t->running_on.store(kNoWorker, std::memory_order_release);
  if (mode == ParkMode::kYield) push_ready(t, idx);
  // kBlock: the unblocker owns the requeue.  kDone: w.post runs next.
}

void Scheduler::switch_to_scheduler(Thread* t) {
  uint32_t w_idx = t->running_on.load(std::memory_order_relaxed);
  PM2_DCHECK(w_idx < n_workers_);
  Worker& w = *workers_[w_idx];
  t->san_worker = w_idx;
  sys::san_start_switch(&t->san_fake_stack, w.san_stack_bottom,
                        w.san_stack_size);
  sys::san_fiber_switch(w.tsan_fiber);
  sys::lockrank_ctx_switch_begin();
  pm2_ctx_switch(&t->sp, w.sched_sp);
  sys::lockrank_ctx_switch_end();
  // The thread may have been resumed under a *different* worker (steal) or
  // a different scheduler (migration): `this` must not be touched, but `t`
  // is iso-addressed and therefore valid anywhere.  The parked fake-stack
  // handle belongs to the kernel thread that parked it — install_thread
  // nulls it for migrated-in stacks, and a cross-worker resume hands ASan
  // null for the same reason.
  void* fake = t->san_fake_stack;
  t->san_fake_stack = nullptr;
  if (t->san_worker != t->running_on.load(std::memory_order_relaxed))
    fake = nullptr;
  sys::san_finish_switch(fake);
}

void Scheduler::yield() {
  Thread* t = self();
  PM2_CHECK(t != nullptr) << "yield() outside a thread";
  // The requeue happens on the scheduler side (dispatch epilogue), after
  // the context is saved: pushing first — as the single-threaded scheduler
  // did — would let a peer worker dispatch a stack that is still live here.
  t->park_mode = ParkMode::kYield;
  switch_to_scheduler(t);
  // NOTE: nothing after the switch may touch `this` — after a migration a
  // resumed thread continues under a *different* scheduler instance.
}

void Scheduler::block() {
  Thread* t = self();
  PM2_CHECK(t != nullptr) << "block() outside a thread";
  t->state = ThreadState::kBlocked;
  t->park_mode = ParkMode::kBlock;
  switch_to_scheduler(t);
}

void Scheduler::block_commit(sys::SpinLock& lock) {
  Thread* t = self();
  PM2_CHECK(t != nullptr) << "block_commit() outside a thread";
  PM2_DCHECK(t->state == ThreadState::kBlocked)
      << "block_commit without kBlocked (caller must park under its lock)";
  t->park_mode = ParkMode::kBlock;
  // Safe to release before the switch: a racing unblock() waits on
  // running_on, which this worker clears only after the context is saved.
  lock.unlock();
  switch_to_scheduler(t);
}

void Scheduler::sleep_us(uint64_t us) {
  Thread* t = self();
  PM2_CHECK(t != nullptr) << "sleep_us() outside a thread";
  if (us == 0) {
    yield();
    return;
  }
  uint32_t w_idx = t->running_on.load(std::memory_order_relaxed);
  PM2_DCHECK(on_worker(w_idx)) << "sleep_us off the owning worker";
  Worker& w = *workers_[w_idx];
  uint64_t deadline = now_ns() + us * 1000;
  // Timers are owner-confined: this code runs on worker w_idx's kernel
  // thread, the same thread that fires them — no lock needed, only the
  // atomic `earliest` mirror for cross-worker deadline reads.
  w.timers.emplace(deadline, t);
  if (deadline < w.earliest.load(std::memory_order_relaxed))
    w.earliest.store(deadline, std::memory_order_relaxed);
  t->state = ThreadState::kBlocked;
  t->park_mode = ParkMode::kBlock;
  switch_to_scheduler(t);
}

void Scheduler::unblock(Thread* t, bool front) {
  PM2_CHECK(t->state == ThreadState::kBlocked)
      << "unblock on " << to_string(t->state) << " thread";
  t->wait_queue = nullptr;
  // The thread may still be on-CPU between publishing its park and saving
  // its context; wait for the owning worker to release it.  Spin briefly
  // (the window is a few hundred instructions), then back off sleeping —
  // a raw spin here can burn a whole quantum when the parker's kernel
  // thread gets preempted mid-switch.
  if (t->running_on.load(std::memory_order_acquire) != kNoWorker) {
    uint32_t spins = 0;
    sys::Backoff bo(sys::Backoff::Config{
        .start_us = 1, .cap_us = 200, .seed = t->id});
    while (t->running_on.load(std::memory_order_acquire) != kNoWorker) {
      if (++spins <= 64)
        sys::cpu_relax();
      else
        bo.sleep();
    }
  }
  uint32_t w = t->affinity != kNoWorker ? t->affinity : t->last_worker;
  if (w >= n_workers_) w = 0;
  push_ready(t, w, front);
}

void Scheduler::exit_current(Continuation reaper) {
  Thread* t = self();
  PM2_CHECK(t != nullptr) << "exit_current() outside a thread";
  // TSD destructors run on the exiting thread's own context, while its
  // stack and iso-heap are still intact — a destructor may isofree the
  // value it owns.  After this, every destructor-bearing key is null, so
  // no per-invocation state survives into a pooled re-arm.
  run_key_destructors(t);
  // One stripe critical section: mark dead, claim the joiner, erase the id
  // — join() serializes against this under the same stripe lock.
  sys::SpinLock& l = registry_.lock_for(t->id);
  l.lock();
  t->state = ThreadState::kDead;
  t->done = true;
  Thread* joiner = t->joiner;
  t->joiner = nullptr;
  bool erased = registry_.erase_locked(t->id);
  l.unlock();
  PM2_CHECK(erased) << "exit of unregistered thread " << t->id;
  size_t left = registry_count_.fetch_sub(1, std::memory_order_relaxed) - 1;
  if (!t->is_daemon()) live_.fetch_sub(1, std::memory_order_relaxed);
  if (joiner != nullptr) unblock(joiner);
  if (left == 0 && stop_requested_.load(std::memory_order_relaxed))
    wake_all_workers();
  Worker& w = *workers_[t->running_on.load(std::memory_order_relaxed)];
  w.post = std::move(reaper);
  w.post_thread = t;
  t->park_mode = ParkMode::kDone;
  switch_out_forever(t);
}

void Scheduler::switch_out_forever(Thread* t) {
  Worker& w = *workers_[t->running_on.load(std::memory_order_relaxed)];
  // Null save slot: the context never runs again, so ASan may release its
  // fake-stack frames instead of keeping them alive forever.
  sys::san_start_switch(nullptr, w.san_stack_bottom, w.san_stack_size);
  sys::san_fiber_switch(w.tsan_fiber);
  sys::lockrank_ctx_switch_begin();
  pm2_ctx_switch(&t->sp, w.sched_sp);
  PM2_FATAL("dead/shipped thread was resumed");
}

bool Scheduler::join(ThreadId id) {
  Thread* self_t = self();
  PM2_CHECK(self_t != nullptr) << "join() outside a thread";
  sys::SpinLock& l = registry_.lock_for(id);
  l.lock();
  Thread* const* p = registry_.find_locked(id);
  Thread* t = p == nullptr ? nullptr : *p;
  if (t == nullptr || t->done) {
    l.unlock();
    return false;
  }
  PM2_CHECK(t != self_t) << "thread joining itself";
  PM2_CHECK(t->joiner == nullptr) << "thread " << id << " already has a joiner";
  t->joiner = self_t;
  self_t->state = ThreadState::kBlocked;
  // The stripe lock serializes against the exit path, which reads `joiner`
  // under it — released atomically with the park.
  block_commit(l);
  return true;
}

// --- migration support -----------------------------------------------------

namespace {
void mark_frozen(Thread* t) {
  t->state.store(ThreadState::kFrozen, std::memory_order_release);
  // Demotion-age stamp for the slot store.  Relaxed: the decay prescan may
  // read it from another worker without a lock.
  t->cold_ns.store(now_ns(), std::memory_order_relaxed);
}
}  // namespace

bool Scheduler::freeze(Thread* t) {
  if (t == nullptr || t == self()) return false;
  // Quiesced tier: single worker, or this worker holds the pause gate —
  // every peer is parked at its loop top, so the caller may scrub the
  // owning worker's containers as a pseudo-owner.  Guaranteed for any
  // kReady thread; callers that must not fail (checkpoint, store decay)
  // wrap in pause_workers(), same contract as before.
  bool quiesced =
      n_workers_ == 1 ||
      (t_scheduler == this && t_worker != kNoWorker &&
       pause_requested_.load(std::memory_order_relaxed) &&
       pauser_worker_.load(std::memory_order_relaxed) == t_worker);
  return quiesced ? freeze_quiesced(t) : freeze_opportunistic(t);
}

bool Scheduler::freeze_quiesced(Thread* t) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (t->state.load(std::memory_order_acquire) != ThreadState::kReady)
      return false;
    uint32_t qw = t->queue_worker.load(std::memory_order_relaxed);
    if (qw >= n_workers_) return false;
    Worker& w = *workers_[qw];
    bool found = false;
    // Handoff mailbox.
    if (w.handoff.load(std::memory_order_relaxed) == t) {
      Thread* e = t;
      found = w.handoff.compare_exchange_strong(e, nullptr,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed);
    }
    // Inbox: take the whole chain, filter, restore the rest (no concurrent
    // pusher while quiesced, so the plain restore store is race-free).
    if (!found) {
      Thread* n = w.inbox.exchange(nullptr, std::memory_order_acquire);
      Thread* keep_head = nullptr;
      Thread* keep_tail = nullptr;
      while (n != nullptr) {
        Thread* nx = n->qnext;
        n->qnext = nullptr;
        if (n == t) {
          found = true;
        } else {
          if (keep_tail != nullptr)
            keep_tail->qnext = n;
          else
            keep_head = n;
          keep_tail = n;
        }
        n = nx;
      }
      if (keep_head != nullptr)
        w.inbox.store(keep_head, std::memory_order_release);
    }
    // Pinned FIFO.
    if (!found) {
      Thread* prev = nullptr;
      for (Thread* it = w.pinned_head; it != nullptr;
           prev = it, it = it->qnext) {
        if (it != t) continue;
        if (prev != nullptr)
          prev->qnext = it->qnext;
        else
          w.pinned_head = it->qnext;
        if (w.pinned_tail == it) w.pinned_tail = prev;
        it->qnext = nullptr;
        found = true;
        break;
      }
    }
    // Deque: rotate through the top; re-pushing non-targets at the bottom
    // preserves their relative FIFO order (pseudo-owner: quiesced).
    if (!found) {
      size_t n_elems = w.deque.size();
      for (size_t i = 0; i <= n_elems; ++i) {
        Thread* x = w.deque.steal();
        if (x == nullptr) break;
        if (x == t) {
          found = true;
          break;
        }
        w.deque.push_bottom(x);
      }
    }
    if (found) {
      w.ready.fetch_sub(1);
      mark_frozen(t);
      return true;
    }
    // kReady but not in its queue_worker's containers: caught it mid-push.
    // Quiesced means the pusher is this same caller's earlier stale read;
    // re-read and retry (defensive — should not happen in practice).
    sys::cpu_relax();
  }
  return false;
}

bool Scheduler::freeze_opportunistic(Thread* t) {
  // Un-gated tier (workers > 1): Runtime::migrate/migrate_async freeze
  // without pausing the node.  Act as a *targeted thief*: the Chase-Lev
  // top CAS and the mailbox exchange hand over elements exactly once, so
  // winning one for the target makes this caller its sole owner — no
  // tombstones, no racing dispatcher.  Threads hiding in the pinned FIFO
  // are unreachable here (they refuse migration anyway); inbox residents
  // are flushed by waking the owner and retrying.  Bounded: may fail under
  // churn, exactly as the old try_lock scan could.
  sys::Backoff bo(sys::Backoff::Config{
      .start_us = 10, .cap_us = 1'000, .seed = t->id});
  for (int attempt = 0; attempt < 64; ++attempt) {
    if (t->state.load(std::memory_order_acquire) != ThreadState::kReady)
      return false;
    // Relaxed hint: a concurrent re-push may be rewriting this.  A stale
    // read targets the wrong worker's containers, finds nothing (the
    // exactly-once removal is authoritative), and retries.
    uint32_t qw = t->queue_worker.load(std::memory_order_relaxed);
    if (qw >= n_workers_) return false;
    Worker& w = *workers_[qw];
    // Mailbox probe.
    if (w.handoff.load(std::memory_order_acquire) == t) {
      Thread* e = t;
      if (w.handoff.compare_exchange_strong(e, nullptr,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
        w.ready.fetch_sub(1);
        mark_frozen(t);
        return true;
      }
      continue;
    }
    // Steal from the victim's top until the target surfaces; innocent
    // bystanders keep running — re-pushed onto the caller's own worker.
    size_t n_elems = w.deque.size();
    for (size_t i = 0; i <= n_elems; ++i) {
      Thread* x = w.deque.steal();
      if (x == nullptr) break;
      w.ready.fetch_sub(1);
      if (x == t) {
        mark_frozen(t);
        return true;
      }
      push_ready(x, home_worker());
    }
    // Possibly inbox-resident: kick the owner to drain, then retry.
    wake_worker(qw);
    if (attempt < 8)
      sys::cpu_relax();
    else
      bo.sleep();
  }
  return false;
}

void Scheduler::unfreeze(Thread* t) {
  PM2_CHECK(t->state == ThreadState::kFrozen)
      << "unfreeze on " << to_string(t->state) << " thread";
  // Publication: push_ready's release store of kReady (and the container
  // insert) make the fully prepared descriptor visible to any worker that
  // takes it — the explicit happens-before edge frozen create/rearm needs.
  push_ready(t, home_worker());
}

void Scheduler::freeze_current_and(Continuation cont) {
  Thread* t = self();
  PM2_CHECK(t != nullptr) << "freeze_current_and() outside a thread";
  t->state = ThreadState::kFrozen;
  Worker& w = *workers_[t->running_on.load(std::memory_order_relaxed)];
  w.post = std::move(cont);
  w.post_thread = t;
  t->park_mode = ParkMode::kDone;
  switch_to_scheduler(t);
  // Resumes here after adopt() — usually on another node.  Only TLS
  // lookups are valid beyond this point (see header).
}

void Scheduler::adopt(Thread* t) {
  PM2_CHECK(t->magic == Thread::kMagic) << "corrupt migrated descriptor";
  t->qnext = nullptr;
  t->qprev = nullptr;
  t->wait_queue = nullptr;
  t->joiner = nullptr;
  t->done = false;
  t->running_on.store(kNoWorker, std::memory_order_relaxed);
  t->park_mode = ParkMode::kYield;
  t->affinity = kNoWorker;
  t->san_worker = kNoWorker;
  // A descriptor forgotten with keep_fiber in this same process carries a
  // live fiber whose shadow call stack still matches the byte-copied
  // frames: reuse it, so resuming mid-call-chain keeps TSan's func
  // entry/exit balanced (a fresh fiber underflows on the first return).
  // A cross-process arrival — or a store-restored image from a dead
  // incarnation — carries a foreign pointer this process does not own:
  // overwrite (never destroy) with a fresh fiber.
  if (t->tsan_fiber == nullptr ||
      t->tsan_fiber_pid != static_cast<uint32_t>(::getpid())) {
    t->tsan_fiber = sys::san_fiber_create();
  }
  uint32_t home = home_worker();
  t->last_worker = home;
  auto [slot, inserted] = registry_.try_emplace(t->id, t);
  (void)slot;
  PM2_CHECK(inserted) << "adopt: duplicate thread id " << t->id;
  registry_count_.fetch_add(1, std::memory_order_relaxed);
  if (!t->is_daemon()) live_.fetch_add(1, std::memory_order_relaxed);
  push_ready(t, home);
}

void Scheduler::forget(Thread* t, bool keep_fiber) {
  if (keep_fiber) {
    // The descriptor bytes (t->tsan_fiber included) ship verbatim; if the
    // adopting process is this one, adopt() resumes on this very fiber —
    // its shadow call stack still matches the byte-copied frames, so the
    // resumed returns stay balanced.  The pid stamp lets adopt() tell a
    // same-process handoff from a foreign (cross-process) handle.
    t->tsan_fiber_pid = static_cast<uint32_t>(::getpid());
  } else {
    sys::san_fiber_destroy(t->tsan_fiber);
    t->tsan_fiber = nullptr;
  }
  bool erased = registry_.erase(t->id);
  PM2_CHECK(erased) << "forget: unknown thread " << t->id;
  registry_count_.fetch_sub(1, std::memory_order_relaxed);
  if (!t->is_daemon()) live_.fetch_sub(1, std::memory_order_relaxed);
}

// --- timers ----------------------------------------------------------------

void Scheduler::fire_expired_timers(Worker& w, uint32_t idx) {
  uint64_t e = w.earliest.load(std::memory_order_relaxed);
  if (e == UINT64_MAX) return;
  uint64_t now = now_ns();
  if (e > now) return;
  // Owner-confined: only this worker's kernel thread touches w.timers.
  while (!w.timers.empty() && w.timers.begin()->first <= now) {
    Thread* t = w.timers.begin()->second;
    w.timers.erase(w.timers.begin());
    PM2_DCHECK(t->state == ThreadState::kBlocked);
    // The sleeper fully switched out before this worker returned to its
    // loop (it slept *on* this worker), so it can be requeued directly.
    push_ready(t, idx);
  }
  w.earliest.store(w.timers.empty() ? UINT64_MAX : w.timers.begin()->first,
                   std::memory_order_relaxed);
}

uint64_t Scheduler::ns_until_next_timer() const {
  uint64_t earliest = UINT64_MAX;
  for (const auto& w : workers_) {
    uint64_t e = w->earliest.load(std::memory_order_relaxed);
    if (e < earliest) earliest = e;
  }
  if (earliest == UINT64_MAX) return UINT64_MAX;
  uint64_t now = now_ns();
  return earliest > now ? earliest - now : 0;
}

// --- worker loop -----------------------------------------------------------

void Scheduler::wake_worker(uint32_t idx) {
  Worker& w = *workers_[idx];
  if (!w.parked.load()) return;
  {
    std::lock_guard<std::mutex> g(w.park_mu);
    w.park_cv.notify_one();
  }
  w.idle_wakeups.fetch_add(1, std::memory_order_relaxed);
}

void Scheduler::wake_all_workers() {
  for (uint32_t i = 0; i < n_workers_; ++i) {
    Worker& w = *workers_[i];
    std::lock_guard<std::mutex> g(w.park_mu);
    w.park_cv.notify_all();
  }
}

void Scheduler::stop() {
  stop_requested_.store(true);
  wake_all_workers();
}

void Scheduler::idle_park(Worker& w, uint32_t idx) {
  if (n_workers_ == 1) {
    // Historical single-loop behavior, preserved exactly; timers are
    // owner-confined, so the read needs no lock.
    if (!w.timers.empty()) {
      uint64_t deadline = w.timers.begin()->first;
      // Lost-wakeup guard: a handoff/inbox push may have landed after
      // pop_local's empty read — re-check before committing to the sleep.
      if (w.handoff.load() != nullptr || w.inbox.load() != nullptr) return;
      // Park the kernel thread until the nearest deadline instead of
      // busy-waiting: a sleeping thread is the only local wake source
      // (cross-node events are owned by the comm daemon, which is a
      // thread and therefore never leaves the scheduler idle).
      timespec until;
      until.tv_sec = static_cast<time_t>(deadline / 1'000'000'000ull);
      until.tv_nsec = static_cast<long>(deadline % 1'000'000'000ull);
      ::clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &until, nullptr);
      return;
    }
    if (w.ready.load() != 0 || w.handoff.load() != nullptr ||
        w.inbox.load() != nullptr)
      return;
    // No runnable thread, no timer, no event source: with a cooperative
    // scheduler this state can never resolve itself.
    PM2_CHECK(registry_count_.load() != 0)
        << "scheduler idle with empty registry but no stop request";
    PM2_FATAL("deadlock: all threads blocked/frozen");
  }

  // Multi-worker: if a peer has surplus, spin back around and steal.
  for (uint32_t i = 0; i < n_workers_; ++i) {
    if (i != idx && workers_[i]->ready.load(std::memory_order_relaxed) > 1)
      return;
  }
  uint64_t now = now_ns();
  uint64_t deadline = now + kIdleBackstopNs;
  uint64_t e = w.earliest.load(std::memory_order_relaxed);
  if (e < deadline) deadline = e;
  if (deadline <= now) return;

  std::unique_lock<std::mutex> lk(w.park_mu);
  w.parked.store(true);
  n_parked_.fetch_add(1);
  // Re-check under "parked" visibility: a pusher that saw parked == false
  // is ordered before our ready load (both seq_cst), so either it sees the
  // flag and notifies or we see its push here.  The handoff slot gets its
  // own explicit re-check: a direct handoff is latency-critical, and its
  // ready increment may still be in flight when this predicate runs.
  auto runnable = [&] {
    return w.ready.load() > 0 || w.handoff.load() != nullptr ||
           stop_requested_.load() || pause_requested_.load();
  };
  if (!runnable()) {
    w.park_cv.wait_for(lk, std::chrono::nanoseconds(deadline - now), runnable);
  }
  w.parked.store(false);
  n_parked_.fetch_sub(1);
}

void Scheduler::gate_wait(uint32_t idx) {
  std::unique_lock<std::mutex> lk(gate_mu_);
  while (pause_requested_.load(std::memory_order_relaxed) &&
         pauser_worker_.load(std::memory_order_relaxed) != idx) {
    ++gated_;
    gate_cv_.notify_all();
    gate_cv_.wait(lk, [&] {
      return !pause_requested_.load(std::memory_order_relaxed) ||
             pauser_worker_.load(std::memory_order_relaxed) == idx;
    });
    --gated_;
  }
}

void Scheduler::pause_workers() {
  if (n_workers_ == 1) return;
  PM2_CHECK(self() != nullptr) << "pause_workers() outside a thread";
  std::unique_lock<std::mutex> lk(gate_mu_);
  while (pause_requested_.load(std::memory_order_relaxed)) {
    // Another pauser holds the token: yield so our worker parks at its
    // gate (a PM2-yielded pauser counts as quiesced), then retry.
    lk.unlock();
    yield();
    lk.lock();
  }
  pause_requested_.store(true);
  pauser_worker_.store(t_worker, std::memory_order_relaxed);
  lk.unlock();
  wake_all_workers();
  if (external_wake_) external_wake_();
  lk.lock();
  gate_cv_.wait(lk, [&] { return gated_ == n_workers_ - 1; });
}

void Scheduler::resume_workers() {
  if (n_workers_ == 1) return;
  std::lock_guard<std::mutex> g(gate_mu_);
  pause_requested_.store(false);
  pauser_worker_.store(kNoWorker, std::memory_order_relaxed);
  gate_cv_.notify_all();
}

bool Scheduler::pause_pending() const {
  return pause_requested_.load(std::memory_order_relaxed) &&
         pauser_worker_.load(std::memory_order_relaxed) != t_worker;
}

void Scheduler::worker_loop(uint32_t idx) {
  Worker& w = *workers_[idx];
  sys::san_current_stack(&w.san_stack_bottom, &w.san_stack_size);
  w.tsan_fiber = sys::san_fiber_current();
  while (true) {
    if (pause_requested_.load(std::memory_order_relaxed)) gate_wait(idx);
    fire_expired_timers(w, idx);
    Thread* t = pop_local(w, idx);
    if (t == nullptr && n_workers_ > 1) t = try_steal(idx);
    if (t != nullptr) {
      dispatch(w, idx, t);
      if (w.post) {
        // Run exit/freeze continuation on the scheduler stack, where the
        // departing thread's stack is guaranteed quiescent.
        Continuation cont = std::move(w.post);
        w.post = nullptr;
        Thread* pt = w.post_thread;
        w.post_thread = nullptr;
        cont(pt);
      }
      continue;
    }
    if (stop_requested_.load() && registry_count_.load() == 0) break;
    idle_park(w, idx);
  }
}

void Scheduler::run() {
  SchedulerBinding bind(this);
  std::vector<std::thread> helpers;
  helpers.reserve(n_workers_ - 1);
  for (uint32_t i = 1; i < n_workers_; ++i) {
    helpers.emplace_back([this, i] {
      SchedulerBinding b(this);
      t_worker = i;
      if (worker_init_) worker_init_(i);
      worker_loop(i);
      t_worker = kNoWorker;
    });
  }
  uint32_t prev_worker = t_worker;
  t_worker = 0;
  worker_loop(0);
  t_worker = prev_worker;
  for (std::thread& h : helpers) h.join();
}

// --- preemption / introspection -------------------------------------------

void Scheduler::maybe_preempt() {
  if (quantum_ns_ == 0) return;
  if (t_scheduler != this || t_worker == kNoWorker) return;
  Worker& w = *workers_[t_worker];
  if (w.current == nullptr) return;
  if (now_ns() - w.slice_start_ns >= quantum_ns_) yield();
}

size_t Scheduler::ready_count() const {
  size_t n = 0;
  for (const auto& w : workers_) n += w->ready.load(std::memory_order_relaxed);
  return n;
}

size_t Scheduler::local_ready_count() const {
  if (t_scheduler != this || t_worker == kNoWorker) return 0;
  return workers_[t_worker]->ready.load(std::memory_order_relaxed);
}

uint64_t Scheduler::context_switches() const {
  uint64_t n = 0;
  for (const auto& w : workers_)
    n += w->dispatches.load(std::memory_order_relaxed);
  return n;
}

std::vector<WorkerStats> Scheduler::worker_stats() const {
  std::vector<WorkerStats> out(n_workers_);
  for (uint32_t i = 0; i < n_workers_; ++i) {
    const Worker& w = *workers_[i];
    out[i].dispatches = w.dispatches.load(std::memory_order_relaxed);
    out[i].steals = w.steals.load(std::memory_order_relaxed);
    out[i].steal_failures = w.steal_failures.load(std::memory_order_relaxed);
    out[i].handoffs = w.handoffs.load(std::memory_order_relaxed);
    out[i].idle_wakeups = w.idle_wakeups.load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace pm2::marcel
