// Initial-frame construction for the hand-rolled x86-64 switch.
#include <cstdint>

#include "common/check.hpp"
#include "marcel/context.hpp"
#include "sys/sanitizer.hpp"
#include "sys/spinlock.hpp"

extern "C" void pm2_ctx_trampoline();

// First-entry landing pad called by pm2_ctx_trampoline: under ASan the
// switch that entered this fresh context left the fiber-switch protocol
// half-open, and it must be closed on the *new* stack with a null
// fake-stack handle (a fresh context has no frames to restore).  The
// lock-rank checker's in-switch window closes here too — a fresh context
// never returns through the pm2_ctx_switch call that entered it, so this
// is its lockrank_ctx_switch_end().
extern "C" void pm2_ctx_boot(pm2::marcel::EntryFn entry, void* arg) {
  pm2::sys::lockrank_ctx_switch_end();
  pm2::sys::san_finish_switch(nullptr);
  entry(arg);
  PM2_FATAL("thread entry returned; it must end in a final context switch");
}

namespace pm2::marcel {

void* ctx_make(void* stack_base, void* stack_top, EntryFn entry, void* arg) {
  (void)stack_base;  // the asm switch needs no explicit stack bounds
  auto top = reinterpret_cast<uintptr_t>(stack_top);
  PM2_CHECK(top % 16 == 0) << "stack top must be 16-byte aligned";
  auto* sp = reinterpret_cast<uint64_t*>(top);

  // Mirror of the save frame in ctx_x86_64.S (listed here top of stack
  // first, i.e. highest address first).
  *--sp = 0;  // fake return address: terminates debugger backtraces
  *--sp = reinterpret_cast<uint64_t>(&pm2_ctx_trampoline);  // ret target
  *--sp = 0;                                   // rbp
  *--sp = 0;                                   // rbx
  *--sp = reinterpret_cast<uint64_t>(entry);   // r12 -> trampoline calls it
  *--sp = reinterpret_cast<uint64_t>(arg);     // r13 -> first argument
  *--sp = 0;                                   // r14
  *--sp = 0;                                   // r15
  // FP control words: SSE default (all exceptions masked, round-nearest)
  // and x87 default, matching what the C runtime sets up at process start.
  *--sp = uint64_t{0x1F80} | (uint64_t{0x037F} << 32);
  return sp;
}

}  // namespace pm2::marcel
