// Synchronization primitives for PM2 threads (node-local).
//
// These park/unpark user-level threads through the cooperative scheduler.
// They coordinate threads *within* one node; the paper explicitly scopes
// data sharing between threads out (§1), and a thread blocked on a wait
// queue is not migratable (Scheduler::freeze refuses, because the queue
// holds a node-local link to it).
//
// SMP protocol: with multiple scheduler workers, waiters and wakers run on
// different kernel threads.  Each primitive guards its state with a short
// sys::SpinLock; a parking thread links itself and sets kBlocked *under*
// that lock and commits the park with Scheduler::block_commit(lock), which
// releases the lock only after the park decision is published — a racing
// unblock() then spins on Thread::running_on until the context is actually
// saved, so no wakeup can be lost and no live stack can be re-dispatched.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "marcel/scheduler.hpp"
#include "marcel/thread.hpp"
#include "sys/spinlock.hpp"
#include "sys/thread_safety.hpp"

namespace pm2::marcel {

/// Intrusive FIFO of parked threads (uses Thread::qnext/qprev).
///
/// Two usage modes, never mixed on one instance:
///  * standalone — park_current()/unpark_one() serialize on the queue's
///    internal lock;
///  * embedded — a primitive guards the queue with its *own* SpinLock and
///    uses the _locked raw ops (link_locked/pop_locked) under it, so the
///    queue links stay atomic with the primitive's state.
class WaitQueue {
 public:
  WaitQueue() = default;
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;
  ~WaitQueue();

  /// Park the calling thread at the tail and deschedule it (standalone
  /// mode: the internal lock closes the link-vs-wake race).
  void park_current();
  /// Park the calling thread, atomically releasing `held` (embedded mode:
  /// the caller linked state changes and this park under `held`).
  void park_current(sys::SpinLock& held) PM2_RELEASE(held);
  /// Unpark the head thread; returns it, or nullptr if empty.  With
  /// `front` set the woken thread jumps to the head of the ready queue
  /// (direct handoff — it runs next; see Scheduler::unblock).
  Thread* unpark_one(bool front = false);
  /// Unpark everything.
  void unpark_all(bool front = false);

  /// Raw ops for embedded mode — caller holds the owning primitive's lock.
  void link_locked(Thread* t);
  Thread* pop_locked();
  /// Detach the whole chain (linked via Thread::qnext) for broadcast wakes:
  /// detaching under the lock keeps late arrivals of the *next* generation
  /// out of this wake batch; the caller walks and unblocks outside the lock.
  Thread* pop_all_locked();

  /// Lock-free observers: outside any lock they answer "was the queue
  /// empty at some recent instant" — callers that need the answer to stay
  /// true hold the owning lock (embedded mode) around them.
  bool empty() const { return size_.load(std::memory_order_relaxed) == 0; }
  size_t size() const { return size_.load(std::memory_order_relaxed); }

 private:
  sys::SpinLock lock_{sys::LockRank::kSyncState};  // standalone mode only
  // head_/tail_ deliberately carry no PM2_GUARDED_BY: in embedded mode they
  // are protected by the *owning primitive's* lock (a different capability
  // per instance), which the static analysis cannot express.  The dynamic
  // layer still covers them — every _locked call site holds some SpinLock,
  // and the rank checker validates that lock's order.
  Thread* head_ = nullptr;
  Thread* tail_ = nullptr;
  // Atomic: size()/empty() are sampled without the owning lock (runtime
  // stats dumps, idle predicates) while another worker links or pops.
  std::atomic<size_t> size_{0};
};

/// Non-recursive mutual exclusion.
class Mutex {
 public:
  void lock();
  bool try_lock();
  void unlock();
  /// Advisory (tests/diagnostics): takes the state lock so the read is not
  /// a race against a locker on another worker.
  bool locked() const {
    sys::SpinGuard g(state_lock_);
    return owner_ != nullptr;
  }

 private:
  mutable sys::SpinLock state_lock_{sys::LockRank::kSyncState};
  Thread* owner_ PM2_GUARDED_BY(state_lock_) = nullptr;
  WaitQueue waiters_;  // embedded mode: guarded by state_lock_
};

/// Condition variable paired with Mutex.
class CondVar {
 public:
  /// Atomically release `mu`, park, re-acquire on wakeup.
  void wait(Mutex& mu);
  void signal();
  void broadcast();

 private:
  // Distinct (higher) rank than kSyncState: wait() runs Mutex::unlock —
  // which acquires the mutex's own state lock and pushes the next owner
  // onto a ready deque — while this lock is held.
  sys::SpinLock state_lock_{sys::LockRank::kSyncCondVar};
  WaitQueue waiters_;  // embedded mode: guarded by state_lock_
};

/// Counting semaphore.
class Semaphore {
 public:
  explicit Semaphore(long initial = 0) : count_(initial) {}
  void acquire();  // P
  void release();  // V
  /// Advisory (tests/diagnostics): locked read, see Mutex::locked().
  long value() const {
    sys::SpinGuard g(state_lock_);
    return count_;
  }

 private:
  mutable sys::SpinLock state_lock_{sys::LockRank::kSyncState};
  long count_ PM2_GUARDED_BY(state_lock_);
  WaitQueue waiters_;  // embedded mode: guarded by state_lock_
};

/// Reusable rendezvous for `parties` threads.
class Barrier {
 public:
  explicit Barrier(size_t parties) : parties_(parties) {}
  /// Returns true for exactly one thread per generation (the releaser).
  bool arrive_and_wait();

 private:
  sys::SpinLock state_lock_{sys::LockRank::kSyncState};
  size_t parties_ PM2_GUARDED_BY(state_lock_);
  size_t arrived_ PM2_GUARDED_BY(state_lock_) = 0;
  WaitQueue waiters_;  // embedded mode: guarded by state_lock_
};

/// One-shot event: wait() blocks until set() (used for RPC replies and
/// negotiation responses delivered by the comm daemon).
class Event {
 public:
  /// With `direct_handoff` the waiters are woken to the *front* of their
  /// worker's ready deque: the completion path (the comm daemon finishing
  /// a reply) hands control straight to the waiting thread instead of
  /// making it ride out a full round-robin lap.  Plain set() keeps FIFO
  /// fairness.  Waking goes through Scheduler::unblock, which targets the
  /// waiter's own worker and kicks it awake if parked.
  void set(bool direct_handoff = false);
  void wait();
  bool is_set() const { return set_.load(std::memory_order_acquire); }

 private:
  sys::SpinLock state_lock_{sys::LockRank::kSyncState};
  std::atomic<bool> set_{false};
  WaitQueue waiters_;  // embedded mode: guarded by state_lock_
};

// ---------------------------------------------------------------------------
// Completion futures
// ---------------------------------------------------------------------------
//
// Future<T>/Promise<T> are the completion half of the v2 asynchronous RPC
// and migration API: the runtime hands out a Future and completes the
// matching Promise from the comm daemon when the reply / ack arrives.
// Deliberately `then`-free — consumers wait() (parking through the
// cooperative scheduler, like every primitive above), poll ready(), or
// take() the value.  Single consumer: take() moves the value out once.
//
// Futures are node-local objects (the shared state lives in node-local
// memory).  A thread parked in wait() cannot be migrated — like any parked
// thread — but a thread *polling* ready()/wait_any() is READY and therefore
// preemptively migratable; do not poll futures while a load balancer is
// allowed to move you.

namespace detail {
template <typename T>
struct FutureState {
  Event event;                // set once value or error lands
  std::optional<T> value;
  std::string error;          // non-empty <=> completed with an error
  bool failed = false;
  bool taken = false;
};

/// Size-binned recycling for the future shared-state control blocks — the
/// per-call allocation on the RPC hot path, pooled the way RpcInvocation
/// recycles through a freelist.  Freelists are thread_local, i.e. one per
/// scheduler worker kernel thread, so the hot path takes no lock; blocks
/// freed on a different worker than they were allocated on simply
/// rebalance the lists.  Hit/miss counters are process-wide (surfaced via
/// the runtime's pool stats).
void* future_pool_alloc(std::size_t bytes);
void future_pool_free(void* p, std::size_t bytes) noexcept;
uint64_t future_pool_hits();
uint64_t future_pool_misses();

template <typename T>
struct PoolAllocator {
  using value_type = T;
  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}
  T* allocate(std::size_t n) {
    return static_cast<T*>(future_pool_alloc(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    future_pool_free(p, n * sizeof(T));
  }
  template <typename U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const PoolAllocator<U>&) const noexcept {
    return false;
  }
};
}  // namespace detail

template <typename T>
class Promise;

template <typename T>
class Future {
 public:
  Future() = default;  // invalid until obtained from a Promise

  bool valid() const { return state_ != nullptr; }
  /// Completed (with a value or an error)?  Never blocks.
  bool ready() const { return state_ != nullptr && state_->event.is_set(); }
  /// Park the calling thread until completion.
  void wait() {
    PM2_CHECK(state_ != nullptr) << "wait on invalid future";
    state_->event.wait();
  }
  /// After completion: did the producer fail it (e.g. session shutdown,
  /// unknown service)?
  bool failed() const {
    return state_ != nullptr && state_->event.is_set() && state_->failed;
  }
  const std::string& error() const {
    static const std::string empty;
    return state_ != nullptr ? state_->error : empty;
  }
  /// wait() + move the value out.  CHECK-fails on an errored future (test
  /// failed() first when errors are expected) and on a second take().
  T take() {
    wait();
    PM2_CHECK(!state_->failed) << "take() on failed future: " << state_->error;
    PM2_CHECK(!state_->taken) << "future value taken twice";
    state_->taken = true;
    return std::move(*state_->value);
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<detail::FutureState<T>> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::FutureState<T>> state_;
};

template <typename T>
class Promise {
 public:
  Promise()
      : state_(std::allocate_shared<detail::FutureState<T>>(
            detail::PoolAllocator<detail::FutureState<T>>())) {}

  /// The (single) consumer handle.
  Future<T> future() const { return Future<T>(state_); }

  // Completions use direct handoff: the producer is the comm daemon (or a
  // local service) finishing a reply the consumer may be parked on — wake
  // it to the front of its worker's ready deque so a blocking caller
  // resumes as soon as that worker schedules, not after a round-robin lap.
  // The value/error write is published by Event::set's release store.
  void set_value(T v) {
    PM2_CHECK(!state_->event.is_set()) << "promise completed twice";
    state_->value.emplace(std::move(v));
    state_->event.set(/*direct_handoff=*/true);
  }
  void set_error(std::string why) {
    PM2_CHECK(!state_->event.is_set()) << "promise completed twice";
    state_->failed = true;
    state_->error = std::move(why);
    state_->event.set(/*direct_handoff=*/true);
  }
  bool completed() const { return state_->event.is_set(); }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

/// Park until every future in `futures` has completed (value or error).
/// Works on anything future-shaped (Future<T>, pm2::RpcFuture<R>).
template <typename F>
void wait_all(std::vector<F>& futures) {
  for (F& f : futures) f.wait();
}

/// Index of a completed future, parking-free: polls ready() and yields
/// between scans (the comm daemon keeps running and completes futures).
/// The caller stays READY while polling — see the migratability note above.
template <typename F>
size_t wait_any(std::vector<F>& futures) {
  PM2_CHECK(!futures.empty()) << "wait_any on empty set";
  Scheduler* sched = Scheduler::current_scheduler();
  PM2_CHECK(sched != nullptr) << "wait_any outside a scheduler";
  while (true) {
    for (size_t i = 0; i < futures.size(); ++i)
      if (futures[i].ready()) return i;
    sched->yield();
  }
}

/// Readers-writer lock, writer-preferring: once a writer queues, new
/// readers wait, so writers cannot starve under a steady reader stream.
class RwLock {
 public:
  void lock_shared();
  void unlock_shared();
  void lock();
  void unlock();

  /// Advisory (tests/diagnostics): locked reads, see Mutex::locked().
  long readers() const {
    sys::SpinGuard g(state_lock_);
    return readers_;
  }
  bool has_writer() const {
    sys::SpinGuard g(state_lock_);
    return writer_ != nullptr;
  }

 private:
  mutable sys::SpinLock state_lock_{sys::LockRank::kSyncState};
  long readers_ PM2_GUARDED_BY(state_lock_) = 0;          // active readers
  Thread* writer_ PM2_GUARDED_BY(state_lock_) = nullptr;  // active writer
  WaitQueue read_waiters_;   // embedded mode: guarded by state_lock_
  WaitQueue write_waiters_;  // embedded mode: guarded by state_lock_
};

}  // namespace pm2::marcel
