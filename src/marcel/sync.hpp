// Synchronization primitives for PM2 threads (node-local).
//
// These park/unpark user-level threads through the cooperative scheduler —
// no kernel futexes, no spinning.  They coordinate threads *within* one
// node; the paper explicitly scopes data sharing between threads out (§1),
// and a thread blocked on a wait queue is not migratable (Scheduler::freeze
// refuses, because the queue holds a node-local link to it).
#pragma once

#include <cstddef>

#include "marcel/scheduler.hpp"
#include "marcel/thread.hpp"

namespace pm2::marcel {

/// Intrusive FIFO of parked threads (uses Thread::qnext/qprev).
class WaitQueue {
 public:
  WaitQueue() = default;
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;
  ~WaitQueue();

  /// Park the calling thread at the tail and deschedule it.
  void park_current();
  /// Unpark the head thread; returns it, or nullptr if empty.
  Thread* unpark_one();
  /// Unpark everything.
  void unpark_all();

  bool empty() const { return head_ == nullptr; }
  size_t size() const { return size_; }

 private:
  Thread* head_ = nullptr;
  Thread* tail_ = nullptr;
  size_t size_ = 0;
};

/// Non-recursive mutual exclusion.
class Mutex {
 public:
  void lock();
  bool try_lock();
  void unlock();
  bool locked() const { return owner_ != nullptr; }

 private:
  Thread* owner_ = nullptr;
  WaitQueue waiters_;
};

/// Condition variable paired with Mutex.
class CondVar {
 public:
  /// Atomically release `mu`, park, re-acquire on wakeup.
  void wait(Mutex& mu);
  void signal();
  void broadcast();

 private:
  WaitQueue waiters_;
};

/// Counting semaphore.
class Semaphore {
 public:
  explicit Semaphore(long initial = 0) : count_(initial) {}
  void acquire();  // P
  void release();  // V
  long value() const { return count_; }

 private:
  long count_;
  WaitQueue waiters_;
};

/// Reusable rendezvous for `parties` threads.
class Barrier {
 public:
  explicit Barrier(size_t parties) : parties_(parties) {}
  /// Returns true for exactly one thread per generation (the releaser).
  bool arrive_and_wait();

 private:
  size_t parties_;
  size_t arrived_ = 0;
  WaitQueue waiters_;
};

/// One-shot event: wait() blocks until set() (used for RPC replies and
/// negotiation responses delivered by the comm daemon).
class Event {
 public:
  void set();
  void wait();
  bool is_set() const { return set_; }

 private:
  bool set_ = false;
  WaitQueue waiters_;
};

/// Readers-writer lock, writer-preferring: once a writer queues, new
/// readers wait, so writers cannot starve under a steady reader stream.
class RwLock {
 public:
  void lock_shared();
  void unlock_shared();
  void lock();
  void unlock();

  long readers() const { return readers_; }
  bool has_writer() const { return writer_ != nullptr; }

 private:
  long readers_ = 0;            // active readers
  Thread* writer_ = nullptr;    // active writer
  WaitQueue read_waiters_;
  WaitQueue write_waiters_;
};

}  // namespace pm2::marcel
