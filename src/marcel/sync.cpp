#include "marcel/sync.hpp"

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace pm2::marcel {

namespace {

/// Link the calling thread on `q` and deschedule it, atomically releasing
/// `held` (the owning primitive's state lock).  On return the thread has
/// been woken by an unparker; the caller re-acquires `held` and retests its
/// predicate (barging: no state is handed off through the park itself).
void park_on(WaitQueue& q, sys::SpinLock& held, Scheduler* sched, Thread* t)
    PM2_RELEASE(held) {
  q.link_locked(t);
  t->wait_queue = &q;
  t->state = ThreadState::kBlocked;
  sched->block_commit(held);
}

/// Walk a chain detached by pop_all_locked() and unblock every thread.
/// Must run with no spinlock held: unblock() may spin on a still-switching
/// thread and takes ready-deque locks.
void unblock_chain(Thread* chain, bool front) {
  Scheduler* sched = Scheduler::current_scheduler();
  while (chain != nullptr) {
    Thread* next = chain->qnext;
    chain->qnext = nullptr;
    chain->qprev = nullptr;
    sched->unblock(chain, front);
    chain = next;
  }
}

}  // namespace

WaitQueue::~WaitQueue() {
  PM2_CHECK(head_ == nullptr) << "wait queue destroyed with parked threads";
}

void WaitQueue::link_locked(Thread* t) {
  t->qnext = nullptr;
  t->qprev = tail_;
  if (tail_ != nullptr)
    tail_->qnext = t;
  else
    head_ = t;
  tail_ = t;
  size_.fetch_add(1, std::memory_order_relaxed);
}

Thread* WaitQueue::pop_locked() {
  Thread* t = head_;
  if (t == nullptr) return nullptr;
  head_ = t->qnext;
  if (head_ != nullptr)
    head_->qprev = nullptr;
  else
    tail_ = nullptr;
  t->qnext = nullptr;
  t->qprev = nullptr;
  size_.fetch_sub(1, std::memory_order_relaxed);
  return t;
}

Thread* WaitQueue::pop_all_locked() {
  Thread* chain = head_;
  head_ = nullptr;
  tail_ = nullptr;
  size_.store(0, std::memory_order_relaxed);
  return chain;
}

void WaitQueue::park_current() {
  Scheduler* sched = Scheduler::current_scheduler();
  PM2_CHECK(sched != nullptr);
  Thread* t = Scheduler::self();
  PM2_CHECK(t != nullptr) << "park outside a thread";
  lock_.lock();
  park_on(*this, lock_, sched, t);
}

void WaitQueue::park_current(sys::SpinLock& held) {
  Scheduler* sched = Scheduler::current_scheduler();
  PM2_CHECK(sched != nullptr);
  Thread* t = Scheduler::self();
  PM2_CHECK(t != nullptr) << "park outside a thread";
  park_on(*this, held, sched, t);
}

Thread* WaitQueue::unpark_one(bool front) {
  lock_.lock();
  Thread* t = pop_locked();
  lock_.unlock();
  if (t != nullptr) Scheduler::current_scheduler()->unblock(t, front);
  return t;
}

void WaitQueue::unpark_all(bool front) {
  lock_.lock();
  Thread* chain = pop_all_locked();
  lock_.unlock();
  unblock_chain(chain, front);
}

void Mutex::lock() {
  Scheduler* sched = Scheduler::current_scheduler();
  Thread* t = Scheduler::self();
  PM2_CHECK(t != nullptr);
  state_lock_.lock();
  while (owner_ != nullptr) {
    PM2_CHECK(owner_ != t) << "recursive lock of non-recursive Mutex";
    park_on(waiters_, state_lock_, sched, t);
    // Loop: another thread may have grabbed the mutex between our unpark
    // and our dispatch (barging); retest rather than assume handoff.
    state_lock_.lock();
  }
  owner_ = t;
  state_lock_.unlock();
}

bool Mutex::try_lock() {
  Thread* t = Scheduler::self();
  PM2_CHECK(t != nullptr);
  state_lock_.lock();
  bool got = owner_ == nullptr;
  if (got) owner_ = t;
  state_lock_.unlock();
  return got;
}

void Mutex::unlock() {
  state_lock_.lock();
  PM2_CHECK(owner_ == Scheduler::self()) << "unlock by non-owner";
  owner_ = nullptr;
  Thread* next = waiters_.pop_locked();
  state_lock_.unlock();
  if (next != nullptr) Scheduler::current_scheduler()->unblock(next);
}

void CondVar::wait(Mutex& mu) {
  Scheduler* sched = Scheduler::current_scheduler();
  Thread* t = Scheduler::self();
  PM2_CHECK(t != nullptr);
  // Link on the cv *before* releasing the mutex, both under the cv lock: a
  // signaler that wins the mutex right after our unlock already sees us
  // queued (or spins on the cv lock until our park commits), so the wakeup
  // cannot fall between unlock and park.
  state_lock_.lock();
  waiters_.link_locked(t);
  t->wait_queue = &waiters_;
  t->state = ThreadState::kBlocked;
  mu.unlock();
  sched->block_commit(state_lock_);
  mu.lock();
}

void CondVar::signal() {
  state_lock_.lock();
  Thread* t = waiters_.pop_locked();
  state_lock_.unlock();
  if (t != nullptr) Scheduler::current_scheduler()->unblock(t);
}

void CondVar::broadcast() {
  state_lock_.lock();
  Thread* chain = waiters_.pop_all_locked();
  state_lock_.unlock();
  unblock_chain(chain, /*front=*/false);
}

void Semaphore::acquire() {
  Scheduler* sched = Scheduler::current_scheduler();
  Thread* t = Scheduler::self();
  PM2_CHECK(t != nullptr);
  state_lock_.lock();
  while (count_ <= 0) {
    park_on(waiters_, state_lock_, sched, t);
    state_lock_.lock();
  }
  --count_;
  state_lock_.unlock();
}

void Semaphore::release() {
  state_lock_.lock();
  ++count_;
  Thread* t = waiters_.pop_locked();
  state_lock_.unlock();
  if (t != nullptr) Scheduler::current_scheduler()->unblock(t);
}

bool Barrier::arrive_and_wait() {
  Scheduler* sched = Scheduler::current_scheduler();
  Thread* t = Scheduler::self();
  PM2_CHECK(t != nullptr);
  state_lock_.lock();
  PM2_CHECK(parties_ > 0);
  if (++arrived_ == parties_) {
    arrived_ = 0;
    // Detach the generation under the lock so a fast thread re-arriving for
    // the next generation cannot be swept into this wake batch.
    Thread* chain = waiters_.pop_all_locked();
    state_lock_.unlock();
    unblock_chain(chain, /*front=*/false);
    return true;
  }
  park_on(waiters_, state_lock_, sched, t);
  return false;
}

void Event::set(bool direct_handoff) {
  state_lock_.lock();
  set_.store(true, std::memory_order_release);
  Thread* chain = waiters_.pop_all_locked();
  state_lock_.unlock();
  unblock_chain(chain, direct_handoff);
}

void Event::wait() {
  if (is_set()) return;
  Scheduler* sched = Scheduler::current_scheduler();
  Thread* t = Scheduler::self();
  PM2_CHECK(t != nullptr);
  state_lock_.lock();
  while (!set_.load(std::memory_order_acquire)) {
    park_on(waiters_, state_lock_, sched, t);
    state_lock_.lock();
  }
  state_lock_.unlock();
}

void RwLock::lock_shared() {
  Scheduler* sched = Scheduler::current_scheduler();
  Thread* t = Scheduler::self();
  PM2_CHECK(t != nullptr);
  state_lock_.lock();
  // Writer preference: park behind any active or queued writer.
  while (writer_ != nullptr || !write_waiters_.empty()) {
    park_on(read_waiters_, state_lock_, sched, t);
    state_lock_.lock();
  }
  ++readers_;
  state_lock_.unlock();
}

void RwLock::unlock_shared() {
  state_lock_.lock();
  PM2_CHECK(readers_ > 0) << "unlock_shared without reader";
  Thread* w = nullptr;
  if (--readers_ == 0) w = write_waiters_.pop_locked();
  state_lock_.unlock();
  if (w != nullptr) Scheduler::current_scheduler()->unblock(w);
}

void RwLock::lock() {
  Scheduler* sched = Scheduler::current_scheduler();
  Thread* self = Scheduler::self();
  PM2_CHECK(self != nullptr);
  state_lock_.lock();
  while (writer_ != nullptr || readers_ > 0) {
    park_on(write_waiters_, state_lock_, sched, self);
    state_lock_.lock();
  }
  writer_ = self;
  state_lock_.unlock();
}

void RwLock::unlock() {
  state_lock_.lock();
  PM2_CHECK(writer_ == Scheduler::self()) << "unlock by non-writing thread";
  writer_ = nullptr;
  // Writers first (preference), else release the reader herd.
  Thread* w = write_waiters_.pop_locked();
  Thread* chain = w == nullptr ? read_waiters_.pop_all_locked() : nullptr;
  state_lock_.unlock();
  if (w != nullptr)
    Scheduler::current_scheduler()->unblock(w);
  else
    unblock_chain(chain, /*front=*/false);
}

// ---------------------------------------------------------------------------
// Future shared-state pool
// ---------------------------------------------------------------------------

namespace detail {
namespace {

constexpr std::size_t kBinGranule = 64;
constexpr std::size_t kNumBins = 16;  // pools blocks up to 15 * 64 = 960 B
constexpr std::size_t kBinCap = 64;   // blocks kept per bin per kernel thread

std::atomic<uint64_t> g_future_pool_hits{0};
std::atomic<uint64_t> g_future_pool_misses{0};

struct BinCache {
  std::vector<void*> bins[kNumBins];
  ~BinCache() {
    for (auto& bin : bins)
      for (void* p : bin) ::operator delete(p);
  }
};

BinCache& cache() {
  static thread_local BinCache c;
  return c;
}

std::size_t bin_for(std::size_t bytes) {
  return (bytes + kBinGranule - 1) / kBinGranule;
}

}  // namespace

void* future_pool_alloc(std::size_t bytes) {
  std::size_t b = bin_for(bytes);
  if (b < kNumBins) {
    auto& bin = cache().bins[b];
    if (!bin.empty()) {
      void* p = bin.back();
      bin.pop_back();
      g_future_pool_hits.fetch_add(1, std::memory_order_relaxed);
      return p;
    }
    g_future_pool_misses.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(b * kBinGranule);
  }
  g_future_pool_misses.fetch_add(1, std::memory_order_relaxed);
  return ::operator new(bytes);
}

void future_pool_free(void* p, std::size_t bytes) noexcept {
  std::size_t b = bin_for(bytes);
  if (b < kNumBins) {
    auto& bin = cache().bins[b];
    if (bin.size() < kBinCap) {
      bin.push_back(p);
      return;
    }
  }
  ::operator delete(p);
}

uint64_t future_pool_hits() {
  return g_future_pool_hits.load(std::memory_order_relaxed);
}

uint64_t future_pool_misses() {
  return g_future_pool_misses.load(std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace pm2::marcel
