#include "marcel/sync.hpp"

#include "common/check.hpp"

namespace pm2::marcel {

WaitQueue::~WaitQueue() {
  PM2_CHECK(head_ == nullptr) << "wait queue destroyed with parked threads";
}

void WaitQueue::park_current() {
  Scheduler* sched = Scheduler::current_scheduler();
  PM2_CHECK(sched != nullptr);
  Thread* t = Scheduler::self();
  PM2_CHECK(t != nullptr) << "park outside a thread";
  t->wait_queue = this;
  t->qnext = nullptr;
  t->qprev = tail_;
  if (tail_ != nullptr)
    tail_->qnext = t;
  else
    head_ = t;
  tail_ = t;
  ++size_;
  sched->block();
}

Thread* WaitQueue::unpark_one(bool front) {
  Thread* t = head_;
  if (t == nullptr) return nullptr;
  head_ = t->qnext;
  if (head_ != nullptr)
    head_->qprev = nullptr;
  else
    tail_ = nullptr;
  t->qnext = nullptr;
  t->qprev = nullptr;
  --size_;
  Scheduler::current_scheduler()->unblock(t, front);
  return t;
}

void WaitQueue::unpark_all(bool front) {
  while (unpark_one(front) != nullptr) {
  }
}

void Mutex::lock() {
  Thread* t = Scheduler::self();
  PM2_CHECK(t != nullptr);
  while (owner_ != nullptr) {
    PM2_CHECK(owner_ != t) << "recursive lock of non-recursive Mutex";
    waiters_.park_current();
    // Loop: another thread may have grabbed the mutex between our unpark
    // and our dispatch (barging); retest rather than assume handoff.
  }
  owner_ = t;
}

bool Mutex::try_lock() {
  Thread* t = Scheduler::self();
  PM2_CHECK(t != nullptr);
  if (owner_ != nullptr) return false;
  owner_ = t;
  return true;
}

void Mutex::unlock() {
  PM2_CHECK(owner_ == Scheduler::self()) << "unlock by non-owner";
  owner_ = nullptr;
  waiters_.unpark_one();
}

void CondVar::wait(Mutex& mu) {
  mu.unlock();
  waiters_.park_current();
  mu.lock();
}

void CondVar::signal() { waiters_.unpark_one(); }

void CondVar::broadcast() { waiters_.unpark_all(); }

void Semaphore::acquire() {
  while (count_ <= 0) waiters_.park_current();
  --count_;
}

void Semaphore::release() {
  ++count_;
  waiters_.unpark_one();
}

bool Barrier::arrive_and_wait() {
  PM2_CHECK(parties_ > 0);
  if (++arrived_ == parties_) {
    arrived_ = 0;
    waiters_.unpark_all();
    return true;
  }
  waiters_.park_current();
  return false;
}

void Event::set(bool direct_handoff) {
  set_ = true;
  waiters_.unpark_all(direct_handoff);
}

void Event::wait() {
  while (!set_) waiters_.park_current();
}

void RwLock::lock_shared() {
  // Writer preference: park behind any active or queued writer.
  while (writer_ != nullptr || !write_waiters_.empty())
    read_waiters_.park_current();
  ++readers_;
}

void RwLock::unlock_shared() {
  PM2_CHECK(readers_ > 0) << "unlock_shared without reader";
  if (--readers_ == 0) write_waiters_.unpark_one();
}

void RwLock::lock() {
  Thread* self = Scheduler::self();
  PM2_CHECK(self != nullptr);
  while (writer_ != nullptr || readers_ > 0) write_waiters_.park_current();
  writer_ = self;
}

void RwLock::unlock() {
  PM2_CHECK(writer_ == Scheduler::self()) << "unlock by non-writing thread";
  writer_ = nullptr;
  // Writers first (preference), else release the reader herd.
  if (write_waiters_.unpark_one() == nullptr) read_waiters_.unpark_all();
}

}  // namespace pm2::marcel
