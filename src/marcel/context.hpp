// Stack-switching primitives.
//
// The whole execution state of a frozen thread is (a) its stack contents and
// (b) one word: the saved stack pointer.  pm2_ctx_switch pushes the
// callee-saved register set onto the *current* stack and stores the
// resulting rsp through save_sp, then reloads a previously saved sp and
// pops.  Because the saved registers live on the thread's own stack — which
// isomalloc places at an iso-address — a frozen thread can be byte-copied to
// another node and resumed there with zero fix-ups (paper §3.1, property
// "Portability": no compiler knowledge about the stack layout is required;
// we never parse frames, we only move them).
//
// Two implementations:
//  * ctx_x86_64.S — hand-rolled System V x86-64 switch (default, ~30 ns);
//  * ctx_ucontext.cpp — portable fallback on swapcontext(); the save area is
//    a ucontext_t local to the switch frame, i.e. also on the thread stack,
//    so migration semantics are identical.
//
// Sanitizer contract: under ASan every pm2_ctx_switch must be bracketed
// with sys::san_start_switch (before, announcing the target stack) and
// sys::san_finish_switch (after, on the new stack) — the scheduler and
// LegacyThread do this at every site, and first entry into a fresh context
// is finished by the trampoline's boot shim with a null handle.  Raw users
// (tests) must speak the same protocol; see sys/sanitizer.hpp.
#pragma once

#include <cstddef>

extern "C" {
/// Save the current context, store its sp in *save_sp, switch to load_sp.
/// Returns (to the caller!) when someone later switches back to *save_sp —
/// possibly on a different node after migration.
void pm2_ctx_switch(void** save_sp, void* load_sp);
}

namespace pm2::marcel {

using EntryFn = void (*)(void*);

/// Build an initial context on the stack [stack_base, stack_top) that enters
/// entry(arg) when first switched to.  entry must never return (it must end
/// in Scheduler::exit_current()); the trampoline traps if it does.
/// Returns the initial saved-sp value.
void* ctx_make(void* stack_base, void* stack_top, EntryFn entry, void* arg);

}  // namespace pm2::marcel
