// Thread descriptor.
//
// A PM2 thread is "an execution flow managing a set of resources, i.e. its
// state descriptor and its private execution stack" (paper §2).  The
// descriptor is a trivially-copyable struct placed *inside the thread's
// first iso-address slot*, immediately followed by the stack, so that a
// byte copy of the thread's slots at the same virtual addresses moves the
// complete thread.
//
// Fields are split into two classes:
//   * migrating state — meaningful on any node (saved sp, stack bounds,
//     iso-address heap pointers, id, name).  Absolute pointers here are safe
//     precisely because of iso-addressing.
//   * node-local state — scheduler queue links, join wait queue.  These are
//     reset by Scheduler::adopt() when a migrated thread is installed.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pm2::marcel {

using ThreadId = uint64_t;

enum class ThreadState : uint32_t {
  kReady = 0,
  kRunning,
  kBlocked,   // parked on a wait queue (mutex/cond/join/...)
  kFrozen,    // removed from scheduling for migration packing
  kDead,
};

const char* to_string(ThreadState s);

struct Thread {
  static constexpr uint64_t kMagic = 0x504D325448524421ull;  // "PM2THRD!"
  static constexpr size_t kNameLen = 32;

  // --- migrating state -------------------------------------------------
  uint64_t magic = kMagic;
  ThreadId id = 0;
  void* sp = nullptr;          // saved stack pointer while not running
  void* stack_base = nullptr;  // lowest stack address (canary lives here)
  void* stack_top = nullptr;   // one past highest address
  void* slot_list = nullptr;   // opaque iso::SlotHeader* chain head
  void* user_fn = nullptr;     // user entry (code is SPMD: same addr anywhere)
  void* user_arg = nullptr;    // must not point into node-local memory if
                               // the thread migrates
  uint32_t home_node = 0;      // node that created the thread
  uint32_t flags = 0;
  char name[kNameLen] = {};
  /// Thread-specific data (marcel_key_*): stored inline in the descriptor
  /// so values — including pointers into iso-memory — migrate with the
  /// thread.  Keys are allocated process-wide (SPMD: identical on all
  /// nodes when allocated in deterministic order before run()).
  static constexpr size_t kMaxKeys = 16;
  void* specific[kMaxKeys] = {};

  // --- node-local state (reset on adopt) --------------------------------
  ThreadState state = ThreadState::kReady;
  Thread* qnext = nullptr;  // intrusive link: ready queue or wait queue
  Thread* qprev = nullptr;
  void* wait_queue = nullptr;     // WaitQueue currently parked on (or null)
  Thread* joiner = nullptr;       // thread blocked in join() on us
  bool done = false;              // set just before the final switch-out
  /// ASan fake-stack handle parked by san_start_switch while the thread is
  /// off-CPU (null in non-ASan builds).  It references the *source* kernel
  /// thread's fake-stack allocator, so install_thread nulls it: the first
  /// switch onto a migrated stack must hand ASan a null handle.
  void* san_fake_stack = nullptr;

  static constexpr uint32_t kFlagDaemon = 1u << 0;  // excluded from live count
  static constexpr uint32_t kFlagPinned = 1u << 1;  // refuses migration
  static constexpr uint32_t kFlagRestored = 1u << 2;  // came from a checkpoint
  /// Spawned for an RPC service invocation on this node: eligible for the
  /// runtime's invocation pool at exit.  Cleared when the thread migrates
  /// (install side never pools foreign slot runs).
  static constexpr uint32_t kFlagService = 1u << 3;

  bool is_daemon() const { return flags & kFlagDaemon; }
  bool is_pinned() const { return flags & kFlagPinned; }

  /// Byte extent of the logical stack [stack_base, stack_top) — the range
  /// the sanitizer shim poisons, scrubs, and announces on switches.
  size_t stack_size() const {
    return static_cast<size_t>(reinterpret_cast<uintptr_t>(stack_top) -
                               reinterpret_cast<uintptr_t>(stack_base));
  }

  /// Stack canary helpers: a magic word at stack_base detects overflow (the
  /// stack grows down toward the descriptor).
  static constexpr uint64_t kCanary = 0xC0FFEE0CACA0FEEDull;
  void arm_canary();
  bool canary_ok() const;
};

static_assert(sizeof(Thread) <= 512, "descriptor should stay compact");

}  // namespace pm2::marcel
