// Thread descriptor.
//
// A PM2 thread is "an execution flow managing a set of resources, i.e. its
// state descriptor and its private execution stack" (paper §2).  The
// descriptor is a trivially-copyable struct placed *inside the thread's
// first iso-address slot*, immediately followed by the stack, so that a
// byte copy of the thread's slots at the same virtual addresses moves the
// complete thread.
//
// Fields are split into two classes:
//   * migrating state — meaningful on any node (saved sp, stack bounds,
//     iso-address heap pointers, id, name).  Absolute pointers here are safe
//     precisely because of iso-addressing.
//   * node-local state — scheduler queue links, join wait queue.  These are
//     reset by Scheduler::adopt() when a migrated thread is installed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace pm2::marcel {

using ThreadId = uint64_t;

/// Sentinel worker index: "no worker" (thread not running / no affinity).
inline constexpr uint32_t kNoWorker = UINT32_MAX;

/// How the running thread asked to be parked when it last switched back to
/// its worker's scheduler context.  Written only by the on-CPU thread right
/// before the switch; consumed by the worker's dispatch epilogue, which owns
/// the post-switch bookkeeping (SMP rule: a thread must be fully off its
/// stack before anyone may requeue it, so the *scheduler side* requeues).
enum class ParkMode : uint8_t {
  kYield = 0,  // requeue on the owning worker's ready deque
  kBlock,      // nothing: the unblocker owns the requeue
  kDone,       // run the worker's post continuation (exit / freeze)
};

enum class ThreadState : uint32_t {
  kReady = 0,
  kRunning,
  kBlocked,   // parked on a wait queue (mutex/cond/join/...)
  kFrozen,    // removed from scheduling for migration packing
  kDead,
};

const char* to_string(ThreadState s);

struct Thread {
  static constexpr uint64_t kMagic = 0x504D325448524421ull;  // "PM2THRD!"
  static constexpr size_t kNameLen = 32;

  // --- migrating state -------------------------------------------------
  uint64_t magic = kMagic;
  ThreadId id = 0;
  void* sp = nullptr;          // saved stack pointer while not running
  void* stack_base = nullptr;  // lowest stack address (canary lives here)
  void* stack_top = nullptr;   // one past highest address
  void* slot_list = nullptr;   // opaque iso::SlotHeader* chain head
  void* user_fn = nullptr;     // user entry (code is SPMD: same addr anywhere)
  void* user_arg = nullptr;    // must not point into node-local memory if
                               // the thread migrates
  uint32_t home_node = 0;      // node that created the thread
  uint32_t flags = 0;
  char name[kNameLen] = {};
  /// Thread-specific data (marcel_key_*): stored inline in the descriptor
  /// so values — including pointers into iso-memory — migrate with the
  /// thread.  Keys are allocated process-wide (SPMD: identical on all
  /// nodes when allocated in deterministic order before run()).
  static constexpr size_t kMaxKeys = 16;
  void* specific[kMaxKeys] = {};

  // --- node-local state (reset on adopt) --------------------------------
  /// Atomic since the lock-free scheduler: the per-deque spinlock used to
  /// order state writes against pops/steals; now the store in push_ready is
  /// the *explicit publication point* — a release store of kReady after the
  /// descriptor (user_fn/user_arg, context) is complete, which a consumer's
  /// acquire pairs with (belt and suspenders on top of the Chase-Lev
  /// publication edge, see sys/chase_lev.hpp).  Plain `=`/`==` still work
  /// (seq_cst) on cold paths; hot paths use explicit orders.
  std::atomic<ThreadState> state{ThreadState::kReady};
  Thread* qnext = nullptr;  // intrusive link: ready queue or wait queue
  Thread* qprev = nullptr;
  void* wait_queue = nullptr;     // WaitQueue currently parked on (or null)
  Thread* joiner = nullptr;       // thread blocked in join() on us
  bool done = false;              // set just before the final switch-out
  /// ASan fake-stack handle parked by san_start_switch while the thread is
  /// off-CPU (null in non-ASan builds).  It references the *source* kernel
  /// thread's fake-stack allocator, so install_thread nulls it: the first
  /// switch onto a migrated stack must hand ASan a null handle.
  void* san_fake_stack = nullptr;
  /// TSan per-context ("fiber") state handle (null in non-TSan builds).
  /// Created when the context is built (create / pool re-arm), switched to
  /// before every dispatch, destroyed when the context dies (reap) or is
  /// unwound half-created.  On a forget(keep_fiber=true) handoff (migration
  /// pack, checkpoint thaw) the handle ships with the descriptor bytes:
  /// its shadow call stack still matches the byte-copied frames, so a
  /// same-process adopt() must resume on this very fiber — a fresh one
  /// would underflow on the first return.  tsan_fiber_pid lets adopt()
  /// recognize a foreign (cross-process) handle and start fresh instead.
  void* tsan_fiber = nullptr;
  uint32_t tsan_fiber_pid = 0;

  // --- SMP ownership (node-local, reset on adopt) ------------------------
  /// Index of the worker currently dispatching this thread, kNoWorker while
  /// fully switched out.  This is the one-owner handshake: set by the
  /// worker that took the thread out of a ready container (the container's
  /// exactly-once removal — Chase-Lev top CAS, inbox drain, mailbox
  /// exchange — makes that worker the sole claimant), cleared (release) by
  /// that worker's dispatch epilogue only after the context is saved and
  /// the canary verified.  unblock() waits on it (spin, then sys::Backoff)
  /// so a wakeup racing the park can never requeue a thread whose stack is
  /// still live on a CPU.
  std::atomic<uint32_t> running_on{kNoWorker};
  /// Park request for the dispatch epilogue (see ParkMode).
  ParkMode park_mode = ParkMode::kYield;
  /// Hard worker pinning (kNoWorker = any).  Pinned threads are pushed only
  /// to this worker's deque and are never stolen: the comm daemon and
  /// spawn_local service threads rely on staying on one kernel thread.
  uint32_t affinity = kNoWorker;
  /// Worker that last ran the thread — the wakeup target for cache/handoff
  /// locality when no affinity is set.
  uint32_t last_worker = 0;
  /// Worker whose ready containers (deque / pinned FIFO / inbox / handoff
  /// mailbox) currently hold the thread.  Written before the kReady
  /// release-store in push_ready, so a reader that acquires state == kReady
  /// sees a matching value.  Atomic (relaxed) because an un-gated freezer
  /// reads it while a later push_ready may be rewriting it concurrently —
  /// there it is only a targeting *hint*, re-validated by the container's
  /// exactly-once removal (top CAS / mailbox exchange), so a stale value
  /// costs a retry, never correctness.
  std::atomic<uint32_t> queue_worker{0};
  /// Worker whose kernel thread parked san_fake_stack: the handle belongs
  /// to that thread's fake-stack allocator, so a resume on a different
  /// worker (steal) must hand ASan null instead — same rule as migration.
  uint32_t san_worker = kNoWorker;
  /// now_ns() when the thread last went cold (frozen by the scheduler or
  /// parked in the invocation pool).  The slot store's decay pass ranks
  /// demotion candidates by this stamp — coldest first.  Atomic (relaxed):
  /// the decay prescan reads stamps of threads another worker may be
  /// freezing or pool-parking at that instant; the value is advisory there
  /// (the authoritative pass runs under pause_workers), only the load must
  /// not tear.
  std::atomic<uint64_t> cold_ns{0};

  static constexpr uint32_t kFlagDaemon = 1u << 0;  // excluded from live count
  static constexpr uint32_t kFlagPinned = 1u << 1;  // refuses migration
  static constexpr uint32_t kFlagRestored = 1u << 2;  // came from a checkpoint
  /// Spawned for an RPC service invocation on this node: eligible for the
  /// runtime's invocation pool at exit.  Cleared when the thread migrates
  /// (install side never pools foreign slot runs).
  static constexpr uint32_t kFlagService = 1u << 3;

  bool is_daemon() const { return flags & kFlagDaemon; }
  bool is_pinned() const { return flags & kFlagPinned; }

  /// Byte extent of the logical stack [stack_base, stack_top) — the range
  /// the sanitizer shim poisons, scrubs, and announces on switches.
  size_t stack_size() const {
    return static_cast<size_t>(reinterpret_cast<uintptr_t>(stack_top) -
                               reinterpret_cast<uintptr_t>(stack_base));
  }

  /// Stack canary helpers: a magic word at stack_base detects overflow (the
  /// stack grows down toward the descriptor).
  static constexpr uint64_t kCanary = 0xC0FFEE0CACA0FEEDull;
  void arm_canary();
  bool canary_ok() const;
};

static_assert(sizeof(Thread) <= 512, "descriptor should stay compact");

}  // namespace pm2::marcel
