// Cooperative user-level scheduler — one instance per PM2 node.
//
// One kernel thread per node runs Scheduler::run(); every PM2 thread of that
// node executes on top of it via pm2_ctx_switch.  This mirrors PM2/Marcel's
// design point: thread creation, destruction and context switching are pure
// user-space operations ("very efficient primitives", paper §2), and a node
// may host tens of thousands of threads.
//
// Migration hooks: freeze()/freeze_current_and() take a thread out of
// scheduling with its complete context saved on its own stack, and adopt()
// installs a thread whose slots were byte-copied from another node.  The
// scheduler itself knows nothing about networks or slots — the PM2 runtime
// composes those.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>

#include "marcel/context.hpp"
#include "marcel/thread.hpp"

namespace pm2::marcel {

class Scheduler {
 public:
  Scheduler();
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Scheduler bound to the calling kernel thread, or nullptr.
  static Scheduler* current_scheduler();
  /// Currently running PM2 thread on this kernel thread (nullptr while the
  /// scheduler loop itself runs).
  static Thread* self();

  // --- thread lifecycle --------------------------------------------------

  /// Continuation invoked on the scheduler stack right after a thread's
  /// final switch-out (exit, or freeze for migration).  Receives the now
  /// quiescent thread.
  using Continuation = std::function<void(Thread*)>;

  /// Create a thread inside caller-provided memory: the descriptor is
  /// placed at the region base, the stack fills the rest (growing down from
  /// the region end).  The region is typically one iso-address slot body.
  /// `id` must be globally unique (the runtime derives it from the node id).
  Thread* create(void* region, size_t region_size, EntryFn entry, void* arg,
                 ThreadId id, const char* name, uint32_t flags = 0);

  /// Recycle a dead thread in place (invocation pooling): reset the
  /// descriptor's node-local state, thread-specific data and context to a
  /// fresh entry at `entry(arg)` — without touching the stack slot layout,
  /// so the caller skips init_stack_slot and the slot acquire entirely.
  /// The thread must have exited (its reaper parked it instead of
  /// releasing its memory); it re-enters scheduling ready, under a new id.
  Thread* rearm(Thread* t, EntryFn entry, void* arg, ThreadId id,
                const char* name, uint32_t flags = 0);

  /// Cooperative yield: requeue caller, run someone else.
  void yield();

  /// Park the caller (state kBlocked).  The caller must already be linked
  /// on some wait queue that will unblock() it later.
  void block();

  /// Park the caller for at least `us` microseconds.  Expired timers fire
  /// whenever control returns to the scheduler loop; under PM2 the comm
  /// daemon bounds its fabric waits by ns_until_next_timer(), so wake-ups
  /// land within the fabric's wake latency of the deadline even on an
  /// otherwise idle node.  Sleeping threads are kBlocked and therefore not
  /// preemptively migratable, like any parked thread.
  void sleep_us(uint64_t us);

  /// Make a blocked thread runnable again.  With `front` set the thread
  /// jumps the ready FIFO (direct handoff): it is dispatched next, before
  /// any round-robin peer — used when the comm daemon completes a reply
  /// the thread is parked on, so a blocking caller resumes immediately
  /// instead of after a full round-robin lap.
  void unblock(Thread* t, bool front = false);

  /// Terminate the calling thread.  `reaper` runs on the scheduler stack
  /// after the thread is off its stack — it releases the thread's memory
  /// (slots) back to the allocator.  Never returns.
  [[noreturn]] void exit_current(Continuation reaper);

  /// Block the caller until thread `id` exits.  Returns false if no such
  /// thread lives here (it may have migrated away or finished).
  bool join(ThreadId id);

  // --- migration support ---------------------------------------------------

  /// Freeze a non-running thread: unlink it from the ready queue.  Its
  /// context is already fully saved on its stack (that is the invariant of
  /// every non-running thread).  Fails (returns false) if the thread is
  /// blocked on a local wait queue — migrating it would leave a dangling
  /// queue link — or is the caller itself.
  bool freeze(Thread* t);

  /// Re-enqueue a frozen thread locally (the freeze was provisional — e.g.
  /// holding a newborn thread back while its argument is prepared).
  void unfreeze(Thread* t);

  /// Freeze the *calling* thread and run `cont` on the scheduler stack.
  /// Used for self-migration: cont packs and ships the thread, after which
  /// the local copy is dead.  If the thread is adopted elsewhere, this call
  /// returns *there* — the code after freeze_current_and() must therefore
  /// only rely on TLS re-lookups, never on pointers captured before the
  /// call (they reference the source node's scheduler).
  void freeze_current_and(Continuation cont);

  /// Install a thread object (descriptor already at its iso-address, stack
  /// and heap already committed and copied).  Resets node-local fields and
  /// enqueues it ready.
  void adopt(Thread* t);

  /// Forget a thread that was shipped away (erase from registry, drop from
  /// live count).  The memory is released by the migration engine.
  void forget(Thread* t);

  // --- main loop ---------------------------------------------------------

  /// Run until stop() was requested and no live (non-daemon) threads
  /// remain.  Must be called on the kernel thread owning this scheduler.
  void run();

  /// Ask run() to return once the node drains.  Daemon threads should
  /// observe stopping() and exit.
  void stop() { stop_requested_ = true; }
  bool stopping() const { return stop_requested_; }

  /// Nanoseconds until the earliest sleep timer expires: 0 if one is
  /// already due, UINT64_MAX if no thread is sleeping.  External event
  /// loops that park the kernel thread (the PM2 comm daemon blocking on
  /// the fabric) bound their waits with this so timers fire on time.
  uint64_t ns_until_next_timer() const;

  // --- preemption (deferred) ----------------------------------------------

  /// Arm a time-slice: maybe_preempt() yields if the running thread has
  /// exceeded `quantum_us`.  PM2 API entry points call maybe_preempt(), so
  /// compute-heavy threads that use the API get descheduled transparently;
  /// pure compute loops must call it (or yield) themselves.
  void set_preemption(uint64_t quantum_us) { quantum_ns_ = quantum_us * 1000; }
  void maybe_preempt();

  // --- introspection -------------------------------------------------------

  Thread* find(ThreadId id) const;
  size_t ready_count() const { return ready_count_; }
  size_t live_count() const { return live_; }
  uint64_t context_switches() const { return switches_; }
  /// Visit every thread registered on this node.
  void for_each(const std::function<void(Thread*)>& fn) const;

 private:
  void dispatch(Thread* t);
  void push_ready(Thread* t);
  void push_ready_front(Thread* t);
  Thread* pop_ready();
  [[noreturn]] void switch_out_forever(Thread* t);
  /// Thread-side half of every switch back to the scheduler loop, with the
  /// sanitizer fiber annotations bracketing it.  After the switch returns
  /// the thread may be running under a different scheduler (migration), so
  /// the epilogue touches only `t` (iso-addressed), never `this`.
  void switch_to_scheduler(Thread* t);

  void* sched_sp_ = nullptr;   // scheduler context while a thread runs
  void* san_sched_fake_ = nullptr;        // ASan fake stack while dispatched
  const void* san_stack_bottom_ = nullptr;  // this kernel thread's stack…
  size_t san_stack_size_ = 0;               // …as announced on switch-back
  Thread* current_ = nullptr;
  Thread* ready_head_ = nullptr;  // intrusive FIFO
  Thread* ready_tail_ = nullptr;
  size_t ready_count_ = 0;
  size_t live_ = 0;  // non-daemon threads registered here
  bool stop_requested_ = false;
  Continuation post_;          // continuation to run after next switch to sched
  Thread* post_thread_ = nullptr;
  std::unordered_map<ThreadId, Thread*> registry_;
  std::multimap<uint64_t, Thread*> timers_;  // wake_ns -> sleeping thread
  void fire_expired_timers();
  std::uint64_t switches_ = 0;
  uint64_t quantum_ns_ = 0;
  uint64_t slice_start_ns_ = 0;
};

/// RAII binding of a scheduler to the current kernel thread (used by the
/// runtime and by tests that drive the scheduler manually).
class SchedulerBinding {
 public:
  explicit SchedulerBinding(Scheduler* sched);
  ~SchedulerBinding();

 private:
  Scheduler* prev_;
};

}  // namespace pm2::marcel
