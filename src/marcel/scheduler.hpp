// Cooperative user-level scheduler — one instance per PM2 node.
//
// The node's PM2 threads execute on top of N worker kernel threads
// (RuntimeConfig::workers; 1 = the original single-loop behavior, bit for
// bit).  Worker 0 is the kernel thread that called run(); helpers are
// spawned for workers 1..N-1.  Since the lock-free rework each worker owns
// four ready containers, consulted in this order:
//
//   1. a single-slot MPSC *handoff mailbox* (std::atomic<Thread*>): direct
//      handoffs — unblock(front=true) when the comm daemon completes a
//      reply — land here and are dispatched before anything else, the
//      lock-free successor of PR 3's front-of-deque handoff slot;
//   2. an MPSC *inbox* (Treiber stack, drained FIFO): remote pushes from
//      other workers or non-worker kernel threads, since Chase-Lev pushes
//      are owner-only;
//   3. an owner-confined FIFO of affinity-pinned threads (workers > 1):
//      thieves structurally never see pinned work, replacing the old
//      skip-scan under the victim's deque lock;
//   4. a lock-free Chase-Lev deque (sys/chase_lev.hpp) of stealable
//      threads: the owner pushes at the bottom and *takes from the top* so
//      dispatch order stays FIFO (round-robin fairness), idle workers
//      steal from the same top end with a CAS.
//
// Publication discipline: a descriptor becomes visible to other workers the
// instant it is pushed ready, so frozen-create/rearm fill user_fn/user_arg
// first and unfreeze() publishes — push_ready's release-store of
// state = kReady (plus the container's own release/acquire edge) is the
// explicit publication the stealing worker acquires.  The per-deque
// spinlock that used to carry this edge (rank kSchedulerDeque) is retired.
//
// The iso-address one-owner invariant is structural: a ready thread sits in
// exactly one container, every container removes exactly once (top CAS /
// exchange / owner drain), the remover marks it kRunning and owns the slot
// run, and Thread::running_on is only cleared by the dispatching worker's
// epilogue after the context is fully saved — so a slot run is touched by
// one worker at a time, and unblock() waits on running_on to close the
// wakeup-vs-park race.
//
// Migration hooks: freeze()/freeze_current_and() take a thread out of
// scheduling with its complete context saved on its own stack, and adopt()
// installs a thread whose slots were byte-copied from another node.  The
// scheduler itself knows nothing about networks or slots — the PM2 runtime
// composes those.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "marcel/context.hpp"
#include "marcel/thread.hpp"
#include "sys/chase_lev.hpp"
#include "sys/spinlock.hpp"
#include "sys/striped_map.hpp"
#include "sys/thread_safety.hpp"

namespace pm2::marcel {

/// Per-worker observability counters (cheap relaxed atomics; see
/// Scheduler::worker_stats()).
struct WorkerStats {
  uint64_t dispatches = 0;     // context switches into PM2 threads
  uint64_t steals = 0;         // threads taken from a peer's deque top
  uint64_t steal_failures = 0; // steal rounds that found nothing
  uint64_t handoffs = 0;       // handoff-mailbox direct pushes
  uint64_t idle_wakeups = 0;   // parked-worker wakeups by a remote push
};

class Scheduler {
 public:
  /// `workers` kernel threads dispatch this node's PM2 threads; clamped to
  /// at least 1.  The default preserves the historical single-loop scheduler.
  explicit Scheduler(uint32_t workers = 1);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Scheduler bound to the calling kernel thread, or nullptr.
  static Scheduler* current_scheduler();
  /// Currently running PM2 thread on this kernel thread (nullptr while the
  /// scheduler loop itself runs, and on non-worker kernel threads).
  static Thread* self();
  /// Worker index of the calling kernel thread (kNoWorker when the caller
  /// is not one of this scheduler's workers — e.g. bootstrap code).
  static uint32_t current_worker();

  // --- thread lifecycle --------------------------------------------------

  /// Continuation invoked on the scheduler stack right after a thread's
  /// final switch-out (exit, or freeze for migration).  Receives the now
  /// quiescent thread.
  using Continuation = std::function<void(Thread*)>;

  /// Create a thread inside caller-provided memory: the descriptor is
  /// placed at the region base, the stack fills the rest (growing down from
  /// the region end).  The region is typically one iso-address slot body.
  /// `id` must be globally unique (the runtime derives it from the node id).
  /// The thread enters the creating worker's containers (worker 0 from
  /// bootstrap); kFlagPinned threads get hard affinity to that worker.
  /// With `start_frozen` the thread is registered kFrozen instead of ready:
  /// the creator finishes preparing it (e.g. copying a spawn_copy image into
  /// its stack) and then unfreeze()s it — at workers > 1 a ready newborn
  /// could be stolen and dispatched mid-preparation otherwise.  unfreeze()'s
  /// push is the release-store the stealing worker acquires.
  Thread* create(void* region, size_t region_size, EntryFn entry, void* arg,
                 ThreadId id, const char* name, uint32_t flags = 0,
                 bool start_frozen = false);

  /// Recycle a dead thread in place (invocation pooling): reset the
  /// descriptor's node-local state, thread-specific data and context to a
  /// fresh entry at `entry(arg)` — without touching the stack slot layout,
  /// so the caller skips init_stack_slot and the slot acquire entirely.
  /// The thread must have exited (its reaper parked it instead of
  /// releasing its memory); it re-enters scheduling ready, under a new id.
  /// `start_frozen` mirrors create(): the caller finishes preparing the
  /// descriptor (user_fn/user_arg) before unfreeze() publishes it — once
  /// pushed ready, any worker may steal and run it immediately.
  Thread* rearm(Thread* t, EntryFn entry, void* arg, ThreadId id,
                const char* name, uint32_t flags = 0,
                bool start_frozen = false);

  /// Cooperative yield: requeue caller, run someone else.
  void yield();

  /// Park the caller (state kBlocked).  The caller must already be linked
  /// on some wait queue that will unblock() it later.  Prefer
  /// block_commit() when a spinlock guards the queue: it closes the window
  /// between publishing the park and switching out.
  void block();

  /// Atomically release `lock` and park the caller.  The caller must have
  /// linked itself on a wait structure and set state = kBlocked while
  /// holding `lock`; the lock is released after the park decision is
  /// published and before the switch, and a racing unblock() waits on
  /// running_on until the context is actually saved.
  void block_commit(sys::SpinLock& lock) PM2_RELEASE(lock);

  /// Park the caller for at least `us` microseconds.  Expired timers fire
  /// whenever control returns to the owning worker's loop; under PM2 the
  /// comm daemon bounds its fabric waits by ns_until_next_timer(), so
  /// wake-ups land within the fabric's wake latency of the deadline even on
  /// an otherwise idle node.  Sleeping threads are kBlocked and therefore
  /// not preemptively migratable, like any parked thread.
  void sleep_us(uint64_t us);

  /// Make a blocked thread runnable again on its affinity worker (if
  /// pinned) or the worker that last ran it.  With `front` set the thread
  /// goes into the target worker's handoff mailbox (direct handoff): it is
  /// dispatched next, before any round-robin peer — used when the comm
  /// daemon completes a reply the thread is parked on.  Safe from any
  /// kernel thread; wakes the target worker if it is parked idle.
  void unblock(Thread* t, bool front = false);

  /// Terminate the calling thread.  `reaper` runs on the scheduler stack
  /// after the thread is off its stack — it releases the thread's memory
  /// (slots) back to the allocator.  Never returns.
  [[noreturn]] void exit_current(Continuation reaper);

  /// Block the caller until thread `id` exits.  Returns false if no such
  /// thread lives here (it may have migrated away or finished).
  bool join(ThreadId id);

  // --- migration support ---------------------------------------------------

  /// Freeze a non-running thread: take it out of its worker's ready
  /// containers.  Its context is already fully saved on its stack (that is
  /// the invariant of every non-running thread).  Fails (returns false) if
  /// the thread is blocked on a local wait queue — migrating it would leave
  /// a dangling queue link — is currently dispatched on some worker, or is
  /// the caller itself.
  ///
  /// Two tiers since the lock-free rework:
  ///   * quiesced (workers == 1, or the caller holds the pause gate): the
  ///     caller scrubs the owning worker's containers directly — guaranteed
  ///     for any kReady thread, pinned included.  Callers that must not
  ///     fail wrap this in pause_workers(), same contract as before.
  ///   * opportunistic (workers > 1, no gate): the freezer acts as a
  ///     targeted thief — it steals from the owning worker's deque top,
  ///     re-pushing threads that are not the target onto its own worker,
  ///     until the top CAS hands it the target (exactly-once, so no
  ///     tombstones and no use-after-free window).  Bounded retries; may
  ///     fail under churn, as the old try_lock-based scan could.
  bool freeze(Thread* t);

  /// Re-enqueue a frozen thread locally (the freeze was provisional — e.g.
  /// holding a newborn thread back while its argument is prepared).  This
  /// is the publication point for frozen-create/rearm: the push is a
  /// release-store a stealing worker acquires before its first dispatch
  /// reads user_fn/user_arg.
  void unfreeze(Thread* t);

  /// Freeze the *calling* thread and run `cont` on the scheduler stack.
  /// Used for self-migration: cont packs and ships the thread, after which
  /// the local copy is dead.  If the thread is adopted elsewhere, this call
  /// returns *there* — the code after freeze_current_and() must therefore
  /// only rely on TLS re-lookups, never on pointers captured before the
  /// call (they reference the source node's scheduler).
  void freeze_current_and(Continuation cont);

  /// Install a thread object (descriptor already at its iso-address, stack
  /// and heap already committed and copied).  Resets node-local fields and
  /// enqueues it ready.
  void adopt(Thread* t);

  /// Forget a thread that was shipped away (erase from registry, drop from
  /// live count).  The memory is released by the migration engine.
  /// keep_fiber: the descriptor is about to be byte-copied and adopted
  /// elsewhere (migration, checkpoint thaw) — keep its TSan fiber alive and
  /// stamp the owning pid so a same-process adopt() can resume the copied
  /// frames on the shadow call stack that still matches them.  The default
  /// destroys the fiber (the context is gone for good).
  void forget(Thread* t, bool keep_fiber = false);

  // --- main loop ---------------------------------------------------------

  /// Run until stop() was requested and no registered threads remain.  Must
  /// be called on the kernel thread owning this scheduler; it becomes
  /// worker 0 and spawns/join the helper workers.
  void run();

  /// Ask run() to return once the node drains.  Daemon threads should
  /// observe stopping() and exit.
  void stop();
  bool stopping() const {
    return stop_requested_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds until the earliest sleep timer expires on *any* worker:
  /// 0 if one is already due, UINT64_MAX if no thread is sleeping.
  /// External event loops that park the kernel thread (the PM2 comm daemon
  /// blocking on the fabric) bound their waits with this so timers fire on
  /// time.
  uint64_t ns_until_next_timer() const;

  // --- preemption (deferred) ----------------------------------------------

  /// Arm a time-slice: maybe_preempt() yields if the running thread has
  /// exceeded `quantum_us`.  PM2 API entry points call maybe_preempt(), so
  /// compute-heavy threads that use the API get descheduled transparently;
  /// pure compute loops must call it (or yield) themselves.
  void set_preemption(uint64_t quantum_us) { quantum_ns_ = quantum_us * 1000; }
  void maybe_preempt();

  // --- SMP coordination ----------------------------------------------------

  /// Quiesce every worker except the caller's at its loop top (no-op at
  /// workers == 1).  While paused, no other worker dispatches — and none is
  /// mid-steal, since workers only park at the gate from the loop top — so
  /// freeze()/for_each() see a node as quiescent as the single-threaded
  /// scheduler did; the audit and checkpoint paths rely on this.  Must be
  /// called from a PM2 thread; the caller must not block through the
  /// scheduler until resume_workers().  Concurrent pausers are safe: the
  /// loser PM2-yields (parking its worker at the winner's gate) and
  /// retries.
  void pause_workers();
  void resume_workers();
  /// A pause is waiting for the calling kernel thread's worker to reach the
  /// gate.  Long-running event loops (the comm daemon) must poll this and
  /// yield so the pauser is not stalled behind a blocking fabric wait.
  bool pause_pending() const;

  /// Hook run on each helper worker kernel thread before its loop (bind
  /// runtime TLS, logging).  Set before run().
  void set_worker_init(std::function<void(uint32_t)> fn) {
    worker_init_ = std::move(fn);
  }
  /// Cross-kernel-thread kick for worker 0, whose loop may be parked deep
  /// inside a blocking fabric receive (the comm daemon): called whenever a
  /// different kernel thread makes work runnable on worker 0.  The runtime
  /// points this at Fabric::wake().
  void set_external_wake(std::function<void()> fn) {
    external_wake_ = std::move(fn);
  }

  // --- introspection -------------------------------------------------------

  Thread* find(ThreadId id) const;
  /// Ready threads across all workers.
  size_t ready_count() const;
  /// Ready threads on the calling kernel thread's own worker (0 when not a
  /// worker).  The comm daemon uses this for its yield predicate so it does
  /// not busy-spin on work that belongs to other workers.
  size_t local_ready_count() const;
  size_t live_count() const { return live_.load(std::memory_order_relaxed); }
  uint64_t context_switches() const;
  uint32_t workers() const { return n_workers_; }
  /// Snapshot of the per-worker counters.
  std::vector<WorkerStats> worker_stats() const;
  /// Visit every thread registered on this node.  At workers > 1 wrap in
  /// pause_workers() when a consistent snapshot is required.
  void for_each(const std::function<void(Thread*)>& fn) const;

 private:
  struct alignas(64) Worker {
    // --- ready containers (see file header for the dispatch order) -------
    /// Direct-handoff mailbox: MPSC single slot, exchange() both ways.  A
    /// displaced occupant (two handoffs racing) overflows into the inbox.
    std::atomic<Thread*> handoff{nullptr};
    /// Remote-push inbox: Treiber stack (push = CAS the head), drained by
    /// the owner in one exchange and reversed to FIFO arrival order.
    std::atomic<Thread*> inbox{nullptr};
    /// Stealable ready threads.  Owner pushes bottom / takes top (FIFO);
    /// thieves CAS the same top.  Lock-free; no capability, no rank.
    sys::ChaseLevDeque<Thread> deque;
    /// Affinity-pinned ready threads (workers > 1 only; at one worker the
    /// deque holds everything, preserving the historical FIFO exactly).
    /// Owner-confined: only this worker's kernel thread links/unlinks.
    Thread* pinned_head = nullptr;
    Thread* pinned_tail = nullptr;
    /// Fairness tick alternating pinned-FIFO/deque preference so neither
    /// source starves the other (the comm daemon is pinned work).
    uint64_t pop_tick = 0;

    /// Ready threads across all four containers.  Incremented by push_ready
    /// after the insert, decremented by the remover; seq_cst where it meets
    /// the park protocol.  A zero read is a fast-path hint, not a proof.
    std::atomic<size_t> ready{0};

    // --- timers (owner-confined) -----------------------------------------
    /// wake_ns -> sleeping thread.  Owner-confined since the lock-free
    /// rework: sleep_us runs on this worker's kernel thread and
    /// fire_expired_timers on its loop — same thread, no capability needed.
    /// Cross-worker readers see only the atomic `earliest` mirror.
    std::multimap<uint64_t, Thread*> timers;
    std::atomic<uint64_t> earliest{UINT64_MAX};

    // Idle parking.
    std::mutex park_mu;
    std::condition_variable park_cv;
    std::atomic<bool> parked{false};

    // Dispatch context of this worker's kernel thread.
    void* sched_sp = nullptr;
    void* san_sched_fake = nullptr;
    const void* san_stack_bottom = nullptr;
    size_t san_stack_size = 0;
    // TSan fiber of the worker's own scheduler context (captured once at
    // loop entry; null in non-TSan builds).  Thread contexts switch back
    // to it in switch_to_scheduler / switch_out_forever.
    void* tsan_fiber = nullptr;
    Thread* current = nullptr;
    Continuation post;  // continuation to run after next switch back
    Thread* post_thread = nullptr;
    uint64_t slice_start_ns = 0;
    uint64_t rng = 0;  // xorshift state for steal victim selection

    std::atomic<uint64_t> dispatches{0};
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> steal_failures{0};
    std::atomic<uint64_t> handoffs{0};
    std::atomic<uint64_t> idle_wakeups{0};
  };

  void worker_loop(uint32_t idx);
  void dispatch(Worker& w, uint32_t idx, Thread* t);
  /// Route `t` into worker `w`'s containers and wake whoever must notice.
  void push_ready(Thread* t, uint32_t w, bool front = false);
  /// MPSC inbox push (any kernel thread).
  static void inbox_push(Worker& w, Thread* t);
  /// Drain the inbox (owner only) and route entries to deque/pinned FIFO in
  /// FIFO arrival order.
  void drain_inbox(Worker& w, uint32_t idx);
  /// Mark a thread taken out of a ready container as owned by worker `idx`.
  void claim(Thread* t, uint32_t idx);
  Thread* pop_local(Worker& w, uint32_t idx);
  Thread* try_steal(uint32_t thief);
  bool freeze_quiesced(Thread* t);
  bool freeze_opportunistic(Thread* t);
  void fire_expired_timers(Worker& w, uint32_t idx);
  void idle_park(Worker& w, uint32_t idx);
  void wake_worker(uint32_t w);
  void wake_all_workers();
  void gate_wait(uint32_t idx);
  void register_thread(Thread* t);
  [[noreturn]] void switch_out_forever(Thread* t);
  /// Thread-side half of every switch back to the worker loop, with the
  /// sanitizer fiber annotations bracketing it.  After the switch returns
  /// the thread may be running under a different worker or a different
  /// scheduler (migration), so the epilogue touches only `t`
  /// (iso-addressed), never `this`.
  void switch_to_scheduler(Thread* t);
  /// Worker index new work should land on from the calling context.
  uint32_t home_worker() const;
  /// True when the calling kernel thread is worker `idx` of this scheduler.
  bool on_worker(uint32_t idx) const;

  uint32_t n_workers_;
  std::vector<std::unique_ptr<Worker>> workers_;
  /// Thread registry: id -> descriptor.  Striped concurrent map (locked
  /// accessors — the registry churns, so the lock-free read path is out of
  /// bounds; see sys/striped_map.hpp).  Stripe rank kRegistryShard.
  sys::StripedMap<ThreadId, Thread*, 8> registry_;
  std::atomic<size_t> registry_count_{0};
  std::atomic<size_t> live_{0};  // non-daemon threads registered here
  std::atomic<bool> stop_requested_{false};
  std::atomic<uint32_t> n_parked_{0};

  // Pause gate (audit/checkpoint quiescence).
  std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  std::atomic<bool> pause_requested_{false};
  std::atomic<uint32_t> pauser_worker_{kNoWorker};
  uint32_t gated_ = 0;  // under gate_mu_

  std::function<void(uint32_t)> worker_init_;
  std::function<void()> external_wake_;

  uint64_t quantum_ns_ = 0;
};

/// RAII binding of a scheduler to the current kernel thread (used by the
/// runtime and by tests that drive the scheduler manually).
class SchedulerBinding {
 public:
  explicit SchedulerBinding(Scheduler* sched);
  ~SchedulerBinding();

 private:
  Scheduler* prev_;
};

}  // namespace pm2::marcel
